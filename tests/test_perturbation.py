"""Tests for the inconsistency simulators (repro.graphs.perturbation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphError
from repro.graphs import (
    add_feature_noise,
    compress_features,
    drop_edges,
    erdos_renyi_graph,
    permute_features,
    perturb_edges,
    truncate_features,
)


def featured_graph(seed=0, n=40, d=30):
    g = erdos_renyi_graph(n, 0.2, seed=seed)
    rng = np.random.default_rng(seed + 1)
    return g.with_features(rng.random((n, d)))


class TestPerturbEdges:
    def test_preserves_edge_count(self):
        g = featured_graph()
        out = perturb_edges(g, 0.3, seed=1)
        assert out.n_edges == g.n_edges

    def test_zero_ratio_identical(self):
        g = featured_graph()
        out = perturb_edges(g, 0.0, seed=1)
        np.testing.assert_array_equal(out.edge_list(), g.edge_list())

    def test_moved_edges_previously_unconnected(self):
        g = featured_graph(seed=2)
        out = perturb_edges(g, 0.4, seed=3)
        original = {tuple(e) for e in g.edge_list()}
        new_edges = {tuple(e) for e in out.edge_list()} - original
        # every new edge must not exist in the original graph
        assert all(e not in original for e in new_edges)

    def test_ratio_controls_overlap(self):
        g = featured_graph(seed=4)
        small = perturb_edges(g, 0.1, seed=5)
        large = perturb_edges(g, 0.6, seed=5)
        original = {tuple(e) for e in g.edge_list()}

        def overlap(graph):
            return len({tuple(e) for e in graph.edge_list()} & original)

        assert overlap(small) > overlap(large)

    def test_features_preserved(self):
        g = featured_graph()
        out = perturb_edges(g, 0.5, seed=6)
        np.testing.assert_array_equal(out.features, g.features)

    def test_invalid_ratio(self):
        with pytest.raises(GraphError):
            perturb_edges(featured_graph(), 1.5)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_edge_count_invariant(self, ratio):
        g = featured_graph(seed=7)
        out = perturb_edges(g, ratio, seed=8)
        assert out.n_edges == g.n_edges


class TestPermuteFeatures:
    def test_column_multiset_preserved(self):
        g = featured_graph(seed=9)
        out = permute_features(g, 0.5, seed=10)
        np.testing.assert_allclose(
            np.sort(out.features.sum(axis=0)), np.sort(g.features.sum(axis=0))
        )

    def test_zero_ratio_identity(self):
        g = featured_graph()
        out = permute_features(g, 0.0, seed=1)
        np.testing.assert_array_equal(out.features, g.features)

    def test_full_permutation_changes_columns(self):
        g = featured_graph(seed=11)
        out = permute_features(g, 1.0, seed=12)
        assert not np.array_equal(out.features, g.features)

    def test_gram_matrix_invariant_under_full_permutation(self):
        """X X^T is unchanged — the linear-algebra core of Prop. 4."""
        g = featured_graph(seed=13)
        out = permute_features(g, 1.0, seed=14)
        np.testing.assert_allclose(
            out.features @ out.features.T, g.features @ g.features.T, atol=1e-10
        )

    def test_featureless_rejected(self):
        with pytest.raises(GraphError):
            permute_features(erdos_renyi_graph(5, 0.5, seed=0), 0.5)


class TestTruncateFeatures:
    def test_dimension_reduced(self):
        g = featured_graph(d=40)
        out = truncate_features(g, 0.25, seed=1)
        assert out.n_features == 30

    def test_remaining_columns_from_original(self):
        g = featured_graph(seed=15, d=20)
        out = truncate_features(g, 0.5, seed=16)
        original_cols = {tuple(col) for col in g.features.T}
        assert all(tuple(col) in original_cols for col in out.features.T)

    def test_ratio_one_rejected(self):
        with pytest.raises(GraphError):
            truncate_features(featured_graph(), 1.0)


class TestCompressFeatures:
    def test_dimension(self):
        g = featured_graph(d=40)
        out = compress_features(g, 0.5, seed=1)
        assert out.n_features == 20

    def test_zero_ratio_identity(self):
        g = featured_graph()
        out = compress_features(g, 0.0)
        np.testing.assert_array_equal(out.features, g.features)

    def test_preserves_leading_variance(self):
        g = featured_graph(seed=17, d=30)
        out = compress_features(g, 0.5, seed=18)
        original_var = np.var(g.features - g.features.mean(0), axis=0).sum()
        compressed_var = np.var(out.features, axis=0).sum()
        assert compressed_var <= original_var + 1e-9
        assert compressed_var > 0.4 * original_var

    def test_deterministic(self):
        g = featured_graph(seed=19)
        a = compress_features(g, 0.3).features
        b = compress_features(g, 0.3).features
        np.testing.assert_array_equal(a, b)


class TestOtherPerturbations:
    def test_add_feature_noise_scale(self):
        g = featured_graph(seed=20)
        out = add_feature_noise(g, 0.5, seed=21)
        delta = out.features - g.features
        assert 0.3 < delta.std() < 0.7

    def test_add_feature_noise_negative_scale(self):
        with pytest.raises(GraphError):
            add_feature_noise(featured_graph(), -1.0)

    def test_drop_edges_count(self):
        g = featured_graph(seed=22)
        out = drop_edges(g, 0.5, seed=23)
        assert out.n_edges == g.n_edges - round(0.5 * g.n_edges)

    def test_drop_edges_subset(self):
        g = featured_graph(seed=24)
        out = drop_edges(g, 0.3, seed=25)
        original = {tuple(e) for e in g.edge_list()}
        assert all(tuple(e) in original for e in out.edge_list())
