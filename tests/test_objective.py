"""Tests for the joint objective (repro.core.objective, Eq. 9)."""

import numpy as np
import pytest

from repro.autodiff.tensor import Tensor
from repro.core import JointObjective, build_structure_bases
from repro.exceptions import ShapeError
from repro.graphs import erdos_renyi_graph
from repro.ot import gw_objective


def make_objective(seed=0, n=12, m=10, k=2, **view_kwargs):
    rng = np.random.default_rng(seed)
    gs = erdos_renyi_graph(n, 0.3, seed=seed).with_features(rng.random((n, 5)))
    gt = erdos_renyi_graph(m, 0.3, seed=seed + 1).with_features(rng.random((m, 5)))
    return JointObjective(
        build_structure_bases(gs, k, **view_kwargs),
        build_structure_bases(gt, k, **view_kwargs),
    )


class TestValue:
    def test_matches_bruteforce_eq9(self):
        obj = make_objective(seed=2, n=6, m=5)
        rng = np.random.default_rng(3)
        beta_s = rng.dirichlet(np.ones(2))
        beta_t = rng.dirichlet(np.ones(2))
        plan = np.outer(np.full(6, 1 / 6), np.full(5, 1 / 5))
        d_s, d_t = obj.combined(beta_s, beta_t)
        expected = (
            (d_s**2).sum() / 36
            + (d_t**2).sum() / 25
            - 2 * np.trace(d_s @ plan @ d_t @ plan.T)
        )
        assert obj.value(plan, beta_s, beta_t) == pytest.approx(expected, rel=1e-10)

    def test_reduces_to_gw_at_vertex(self):
        """At a simplex vertex, F equals the vanilla GW objective on that
        basis (the reduction discussed under Eq. 8)."""
        obj = make_objective(seed=4, n=8, m=8)
        mu = np.full(8, 1 / 8)
        plan = np.outer(mu, mu)
        beta = np.array([1.0, 0.0])
        value = obj.value(plan, beta, beta)
        gw = gw_objective(
            obj.source_bases[0], obj.target_bases[0], plan, mu=mu, nu=mu
        )
        assert value == pytest.approx(gw, rel=1e-10)


class TestGradients:
    def test_alpha_gradient_finite_differences(self):
        obj = make_objective(seed=5, n=7, m=6)
        rng = np.random.default_rng(6)
        beta_s = rng.dirichlet(np.ones(2))
        beta_t = rng.dirichlet(np.ones(2))
        plan = np.outer(np.full(7, 1 / 7), np.full(6, 1 / 6))
        grad = obj.alpha_gradient(plan, beta_s, beta_t)
        eps = 1e-7
        for q in range(2):
            bumped = beta_s.copy()
            bumped[q] += eps
            fd = (obj.value(plan, bumped, beta_t) - obj.value(plan, beta_s, beta_t)) / eps
            assert grad[q] == pytest.approx(fd, rel=1e-4, abs=1e-7)
            bumped_t = beta_t.copy()
            bumped_t[q] += eps
            fd_t = (
                obj.value(plan, beta_s, bumped_t) - obj.value(plan, beta_s, beta_t)
            ) / eps
            assert grad[2 + q] == pytest.approx(fd_t, rel=1e-4, abs=1e-7)

    def test_plan_gradient_finite_differences(self):
        obj = make_objective(seed=7, n=5, m=4)
        rng = np.random.default_rng(8)
        beta_s = rng.dirichlet(np.ones(2))
        beta_t = rng.dirichlet(np.ones(2))
        plan = rng.random((5, 4))
        plan /= plan.sum()
        grad = obj.plan_gradient(plan, beta_s, beta_t)
        eps = 1e-7
        for i in range(5):
            for j in range(4):
                bumped = plan.copy()
                bumped[i, j] += eps
                fd = (
                    obj.value(bumped, beta_s, beta_t)
                    - obj.value(plan, beta_s, beta_t)
                ) / eps
                assert grad[i, j] == pytest.approx(fd, rel=1e-3, abs=1e-6)


class TestAutodiffAudit:
    """Eq. 9 gradients audited against reverse-mode autodiff, on the
    *overhauled* view families (centred kernels, per-hop cosine
    renormalisation, lazy-walk mixing) — pinning that the per-view
    normalisation changes never desynchronise objective and gradient."""

    VIEW_VARIANTS = [
        dict(),
        dict(center_kernels=True),
        dict(center_kernels=True, renormalize_hops=True, hop_mix=0.5),
    ]

    @staticmethod
    def _autodiff_value(obj, plan, beta_s, beta_t):
        """F(π, β_s, β_t) built from Tensor primitives."""
        bs = Tensor(beta_s, requires_grad=True)
        bt = Tensor(beta_t, requires_grad=True)
        pi = Tensor(plan, requires_grad=True)
        d_s = None
        for q, basis in enumerate(obj.source_bases):
            term = bs[q] * Tensor(basis)
            d_s = term if d_s is None else d_s + term
        d_t = None
        for q, basis in enumerate(obj.target_bases):
            term = bt[q] * Tensor(basis)
            d_t = term if d_t is None else d_t + term
        value = (
            (d_s * d_s).sum() / obj.n**2
            + (d_t * d_t).sum() / obj.m**2
            - 2.0 * ((d_s @ pi @ d_t.transpose()) * pi).sum()
        )
        value.backward()
        return value, bs, bt, pi

    @pytest.mark.parametrize("view_kwargs", VIEW_VARIANTS)
    def test_alpha_gradient_matches_autodiff(self, view_kwargs):
        obj = make_objective(seed=12, n=9, m=8, k=3, **view_kwargs)
        rng = np.random.default_rng(13)
        beta_s = rng.dirichlet(np.ones(3))
        beta_t = rng.dirichlet(np.ones(3))
        plan = rng.random((9, 8))
        plan /= plan.sum()
        value, bs, bt, _ = self._autodiff_value(obj, plan, beta_s, beta_t)
        assert obj.value(plan, beta_s, beta_t) == pytest.approx(
            value.item(), rel=1e-10
        )
        grad = obj.alpha_gradient(plan, beta_s, beta_t)
        np.testing.assert_allclose(grad[:3], bs.grad, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(grad[3:], bt.grad, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize("view_kwargs", VIEW_VARIANTS)
    def test_plan_gradient_matches_autodiff(self, view_kwargs):
        obj = make_objective(seed=14, n=7, m=6, k=3, **view_kwargs)
        rng = np.random.default_rng(15)
        beta_s = rng.dirichlet(np.ones(3))
        beta_t = rng.dirichlet(np.ones(3))
        plan = rng.random((7, 6))
        plan /= plan.sum()
        _, _, _, pi = self._autodiff_value(obj, plan, beta_s, beta_t)
        grad = obj.plan_gradient(plan, beta_s, beta_t)
        np.testing.assert_allclose(grad, pi.grad, rtol=1e-9, atol=1e-12)


class TestStructure:
    def test_gram_matrices_symmetric_psd(self):
        obj = make_objective(seed=9, k=3)
        for gram in (obj.gram_source, obj.gram_target):
            np.testing.assert_allclose(gram, gram.T)
            eigs = np.linalg.eigvalsh(gram)
            assert eigs.min() > -1e-8

    def test_mismatched_counts_rejected(self):
        obj_bases = make_objective(seed=10)
        with pytest.raises(ShapeError):
            JointObjective(obj_bases.source_bases, obj_bases.target_bases[:1])

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            JointObjective([], [])

    def test_lipschitz_estimates_positive(self):
        obj = make_objective(seed=11)
        l_alpha, l_pi = obj.lipschitz_estimates()
        assert l_alpha > 0 and l_pi > 0
