"""Tests for the preallocated kernel workspace arena (PR 10).

The float32 fast path's performance claim rests on three structural
properties of :mod:`repro.ot.workspace`:

* a :class:`Workspace` owns every scratch buffer for a given
  ``(capacity, n, m, dtype)`` and is reallocated — never silently
  grown — when a lease does not fit;
* the :class:`WorkspaceArena` keys workspaces by thread identity, so
  two threads can never observe the same buffer (checked structurally
  via ``np.shares_memory`` and dynamically under the racecheck
  instrumented locks);
* the steady state of the workspace Sinkhorn kernel performs **no
  plan-sized allocation** — the ``tracemalloc`` assertion that pins
  the "allocator traffic eliminated from ``pi_update``" claim.
"""

import threading
import tracemalloc
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro.ot.workspace as workspace_mod
from repro.analysis.racecheck import RaceRegistry
from repro.exceptions import ShapeError
from repro.ot.sinkhorn import (
    F32_SINKHORN_TOL,
    sinkhorn_log_kernel_fast,
    sinkhorn_log_kernel_fast_workspace,
)
from repro.ot.workspace import Workspace, WorkspaceArena


def load_kernels(workspace, r, seed=0):
    """Seeded log kernels into the workspace; returns (mu, nu)."""
    rng = np.random.default_rng(seed)
    n, m = workspace.n, workspace.m
    workspace.log_kernel[:r] = rng.standard_normal((r, n, m)).astype(
        workspace.dtype
    )
    mu = np.full(n, 1.0 / n)
    nu = np.full(m, 1.0 / m)
    workspace.set_marginals(mu, nu)
    return mu, nu


class TestWorkspace:
    def test_buffers_have_the_contracted_shapes_and_dtype(self):
        ws = Workspace(4, 9, 7, np.float32)
        assert ws.plans.shape == (4, 9, 7)
        assert ws.new_plans.shape == (4, 9, 7)
        assert ws.tp.shape == (4, 7, 9)
        assert ws.d_s.shape == (4, 9, 9)
        assert ws.d_t.shape == (4, 7, 7)
        assert ws.u.shape == (4, 9, 1)
        assert ws.v.shape == (4, 7, 1)
        assert ws.mu_col.shape == (9, 1)
        assert ws.nu_col.shape == (7, 1)
        for name in ("plans", "grad", "kernel", "u", "v", "mu_col"):
            assert getattr(ws, name).dtype == np.float32, name

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Workspace(0, 4, 4)

    def test_fits_matches_on_all_four_axes(self):
        ws = Workspace(3, 8, 6, np.float64)
        assert ws.fits(3, 8, 6, np.float64)
        assert ws.fits(1, 8, 6, "float64")  # smaller stacks slice in
        assert not ws.fits(4, 8, 6, np.float64)  # over capacity
        assert not ws.fits(3, 9, 6, np.float64)  # wrong n
        assert not ws.fits(3, 8, 7, np.float64)  # wrong m
        assert not ws.fits(3, 8, 6, np.float32)  # wrong dtype

    def test_set_marginals_casts_into_the_broadcast_columns(self):
        ws = Workspace(1, 5, 4, np.float32)
        mu = np.full(5, 0.2)
        nu = np.full(4, 0.25)
        ws.set_marginals(mu, nu)
        np.testing.assert_allclose(ws.mu_col[:, 0], mu, rtol=1e-6)
        np.testing.assert_allclose(ws.nu_col[:, 0], nu, rtol=1e-6)
        assert ws.mu_col.dtype == np.float32

    def test_nbytes_counts_every_buffer(self):
        small = Workspace(1, 4, 4, np.float32)
        large = Workspace(8, 4, 4, np.float32)
        assert 0 < small.nbytes < large.nbytes

    def test_einsum_path_is_memoised_per_shape(self):
        ws = Workspace(2, 6, 5)
        a = np.zeros((6, 5))
        b = np.zeros((5, 5))
        first = ws.einsum_path("ij,jk->ik", a, b)
        assert ws.einsum_path("ij,jk->ik", a, b) is first

    def test_cast_is_memoised_by_source_identity(self):
        ws = Workspace(1, 4, 4, np.float32)
        source = np.arange(6, dtype=np.float64)
        first = ws.cast("bases", source)
        assert first.dtype == np.float32
        assert ws.cast("bases", source) is first
        # a different array under the same name is a different entry
        other = ws.cast("bases", source.copy())
        assert other is not first


class TestArena:
    def test_same_thread_reuses_a_fitting_workspace(self):
        arena = WorkspaceArena()
        first = arena.lease(2, 8, 6, np.float32)
        assert arena.lease(1, 8, 6, np.float32) is first
        assert arena.lease(2, 8, 6, np.float32) is first

    @pytest.mark.parametrize(
        "request_args",
        [
            (3, 8, 6, np.float32),  # capacity growth
            (2, 9, 6, np.float32),  # shape change: n
            (2, 8, 7, np.float32),  # shape change: m
            (2, 8, 6, np.float64),  # dtype change
        ],
    )
    def test_lease_reallocates_when_the_request_does_not_fit(
        self, request_args
    ):
        arena = WorkspaceArena()
        first = arena.lease(2, 8, 6, np.float32)
        replacement = arena.lease(*request_args)
        assert replacement is not first
        assert replacement.fits(*request_args)
        # the old workspace was replaced, not accumulated
        assert len(arena.workspaces()) == 1

    def test_threads_never_share_buffers(self):
        arena = WorkspaceArena()
        leases = {}
        barrier = threading.Barrier(3)

        def worker(key):
            barrier.wait()
            for _ in range(20):
                leases[key] = arena.lease(2, 10, 8, np.float32)

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(2)
        ]
        for thread in threads:
            thread.start()
        worker("main")
        for thread in threads:
            thread.join(timeout=30)
        workspaces = list(leases.values())
        assert len({id(ws) for ws in workspaces}) == 3
        for i, a in enumerate(workspaces):
            for b in workspaces[i + 1:]:
                assert not np.shares_memory(a.plans, b.plans)
                assert not np.shares_memory(a.new_plans, b.new_plans)

    def test_clear_empties_the_pool(self):
        arena = WorkspaceArena()
        arena.lease(1, 4, 4)
        arena.clear()
        assert arena.workspaces() == []

    def test_arena_is_clean_under_racecheck(self):
        """``_by_thread`` is only ever touched with ``_lock`` held."""
        registry = RaceRegistry()
        with registry.instrument(workspace_mod):
            arena = WorkspaceArena()
            registry.guard(
                arena, ("_by_thread",), arena._lock, label="arena"
            )
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(arena.lease, 1 + (i % 3), 8, 6, np.float32)
                    for i in range(32)
                ]
                for future in futures:
                    future.result(timeout=30)
            arena.workspaces()
            arena.clear()
        registry.assert_clean()


class TestWorkspaceKernel:
    def test_rejects_out_of_capacity_slices(self):
        ws = Workspace(2, 6, 5, np.float32)
        load_kernels(ws, 2)
        with pytest.raises(ShapeError):
            sinkhorn_log_kernel_fast_workspace(ws, 3)
        with pytest.raises(ShapeError):
            sinkhorn_log_kernel_fast_workspace(ws, 0)

    def test_matches_the_serial_fast_kernel_per_slice(self):
        """Float64 workspace kernel ≡ the pinned serial kernel, slice by
        slice — the per-slice bitwise contract coalescing relies on."""
        r, n, m = 3, 12, 10
        ws = Workspace(r, n, m, np.float64)
        mu, nu = load_kernels(ws, r, seed=3)
        log_kernels = ws.log_kernel[:r].copy()
        sinkhorn_log_kernel_fast_workspace(ws, r, max_iter=40, tol=0.0)
        for index in range(r):
            reference = sinkhorn_log_kernel_fast(
                log_kernels[index], mu, nu, max_iter=40, tol=0.0
            )
            np.testing.assert_array_equal(
                ws.new_plans[index], reference.plan,
                err_msg=f"slice {index} diverged from the serial kernel",
            )

    def test_inner_loop_allocates_no_plan_sized_buffers(self):
        """The workspace claim itself: after warm-up, a full kernel run
        performs no allocation as large as one ``(n, m)`` plan."""
        r, n, m = 3, 48, 40
        ws = Workspace(r, n, m, np.float32)
        load_kernels(ws, r, seed=1)
        sinkhorn_log_kernel_fast_workspace(
            ws, r, max_iter=30, tol=F32_SINKHORN_TOL
        )  # warm-up: einsum paths, lazily-created ufunc state
        load_kernels(ws, r, seed=2)
        plan_bytes = n * m * ws.dtype.itemsize
        tracemalloc.start()
        sinkhorn_log_kernel_fast_workspace(
            ws, r, max_iter=30, tol=F32_SINKHORN_TOL
        )
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        stats = snapshot.statistics("lineno")
        big = [stat for stat in stats if stat.size >= plan_bytes]
        assert big == [], (
            "plan-sized allocations in the steady-state kernel: "
            + "; ".join(str(stat) for stat in big)
        )
        # belt and braces: bookkeeping scalars are all that remains
        assert sum(stat.size for stat in stats) < 4 * plan_bytes
