"""Tests for graph IO (repro.graphs.io) and feature synthesis."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import erdos_renyi_graph, load_graph, save_graph
from repro.graphs.features import (
    community_bag_of_words,
    degree_correlated_features,
    latent_position_features,
    pca_project,
    random_orthogonal_matrix,
)


class TestIO:
    def test_round_trip(self, tmp_path):
        g = erdos_renyi_graph(20, 0.3, seed=0).with_features(
            np.random.default_rng(1).random((20, 4))
        )
        g.node_labels = np.arange(20) % 3
        path = tmp_path / "graph.npz"
        save_graph(g, path)
        loaded = load_graph(path)
        np.testing.assert_array_equal(loaded.edge_list(), g.edge_list())
        np.testing.assert_array_equal(loaded.features, g.features)
        np.testing.assert_array_equal(loaded.node_labels, g.node_labels)
        assert loaded.name == g.name

    def test_featureless_round_trip(self, tmp_path):
        g = erdos_renyi_graph(10, 0.2, seed=2)
        path = tmp_path / "plain.npz"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.features is None
        assert loaded.n_edges == g.n_edges

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphError):
            load_graph(tmp_path / "nope.npz")


class TestCommunityBagOfWords:
    def test_binary_output(self):
        labels = np.repeat([0, 1, 2], 10)
        feats = community_bag_of_words(labels, 60, seed=0)
        assert set(np.unique(feats)) <= {0.0, 1.0}

    def test_community_members_more_similar(self):
        labels = np.repeat([0, 1], 25)
        feats = community_bag_of_words(
            labels, 100, words_per_node=15, topic_concentration=0.9, seed=1
        )
        norm = feats / np.maximum(
            np.linalg.norm(feats, axis=1, keepdims=True), 1e-12
        )
        sim = norm @ norm.T
        same = labels[:, None] == labels[None, :]
        np.fill_diagonal(same, False)
        assert sim[same].mean() > 2 * sim[~same & ~np.eye(50, dtype=bool)].mean()

    def test_bad_inputs(self):
        with pytest.raises(GraphError):
            community_bag_of_words(np.ones((2, 2)), 10)
        with pytest.raises(GraphError):
            community_bag_of_words(np.zeros(5), 0)


class TestOtherFeatureSynths:
    def test_degree_correlated(self):
        degrees = np.array([1.0, 2.0, 50.0, 100.0])
        feats = degree_correlated_features(degrees, 8, noise=0.01, seed=0)
        # leading feature direction should order with degree
        proj = feats @ feats.mean(axis=0)
        assert abs(np.corrcoef(proj, np.log1p(degrees))[0, 1]) > 0.9

    def test_latent_positions_shapes(self):
        latent, feats = latent_position_features(30, 12, n_latent=4, seed=1)
        assert latent.shape == (30, 4)
        assert feats.shape == (30, 12)

    def test_random_orthogonal(self):
        q = random_orthogonal_matrix(6, seed=2)
        np.testing.assert_allclose(q @ q.T, np.eye(6), atol=1e-10)

    def test_pca_project_dims(self):
        rng = np.random.default_rng(3)
        feats = rng.random((20, 10))
        out = pca_project(feats, 4)
        assert out.shape == (20, 4)

    def test_pca_project_validates(self):
        with pytest.raises(GraphError):
            pca_project(np.ones((5, 5)), 0)
