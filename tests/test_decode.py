"""Tests for the decode stage (PR 9): plan → solve → **decode** → evaluate.

Covers the decoder registry (unknown names fail with a
:class:`ConfigError` naming the valid choices), the
:class:`DecodedMatching` contract, the **bitwise parity** of the
``row-argmax`` decoder with the pre-decode-stage evaluate path (dense
and CSR, ties included), permutation equivariance of every registered
decoder (matching *and* metrics), the hungarian decoder's shed-mass
square padding on non-square and partial plans — regressed against
:func:`repro.eval.metrics.unmatchable_detection` on a seeded partial
pair — the sparse (never-densifying) decode path through a
partitioned alignment, the alignment service's per-job decoder, and
the engine's decode-stage plumbing.
"""

from dataclasses import replace

import numpy as np
import pytest
import scipy.optimize
import scipy.sparse as sp

from repro.core import SLOTAlignConfig
from repro.datasets import (
    PartialPairSpec,
    make_partial_pair,
    make_semi_synthetic_pair,
)
from repro.engine import (
    DEFAULT_DECODER,
    AlignmentEngine,
    DecodedMatching,
    PlanCache,
    available_decoders,
    decode_plan,
    ensure_decoder,
    evaluate_alignment,
    get_decoder,
)
from repro.engine.decode import UNMATCHABLE_THRESHOLD, shed_scores
from repro.eval.metrics import (
    evaluate_decoded,
    evaluate_plan,
    unmatchable_detection,
)
from repro.exceptions import ConfigError
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.serve import AlignmentService, wait_all

ALL_DECODERS = ("hungarian", "mea", "mutual-argmax", "row-argmax")
ONE_TO_ONE = ("hungarian", "mea", "mutual-argmax")

FAST = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=25, sinkhorn_iter=20,
    track_history=False,
)
#: single-restart profile for the partial solves (tier-1 stays fast)
TINY = replace(
    FAST, max_outer_iter=10, sinkhorn_iter=10,
    multi_start=False, single_start_view="node",
)


def base_graph(seed=0, n_per_block=10):
    graph = stochastic_block_model([n_per_block] * 3, 0.4, 0.02, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 30, words_per_node=6, seed=seed + 1
    )
    graph = graph.with_features(feats)
    graph.node_labels = None
    return graph


def bench_pair(seed=0, n_per_block=10):
    return make_semi_synthetic_pair(base_graph(seed=seed), edge_noise=0.1, seed=seed + 2)


def balanced_plan(n, m=None, seed=0, iters=60):
    """Tie-free random plan with near-uniform marginals.

    Sinkhorn-style alternating normalisation, ending on the row
    projection (rows exactly uniform, like the solver's output) —
    shed gating stays silent, and continuous random entries make
    argmax/assignment optima almost surely unique.
    """
    m = n if m is None else m
    rng = np.random.default_rng(seed)
    plan = rng.random((n, m)) + 0.05
    for _ in range(iters):
        plan /= plan.sum(axis=0, keepdims=True)
        plan /= plan.sum(axis=1, keepdims=True)
    return plan / n


class TestRegistry:
    def test_builtin_decoders_registered(self):
        decoders = available_decoders()
        assert set(decoders) == set(ALL_DECODERS)
        assert all(decoders.values()), "every decoder needs a description"
        assert DEFAULT_DECODER in decoders

    def test_unknown_decoder_names_choices(self):
        for fn in (get_decoder, ensure_decoder):
            with pytest.raises(ConfigError, match="valid decoders.*hungarian"):
                fn("viterbi")
        with pytest.raises(ConfigError, match="row-argmax"):
            decode_plan(balanced_plan(4), "viterbi")

    def test_ensure_decoder_returns_the_name(self):
        assert ensure_decoder("mea") == "mea"

    def test_get_decoder_returns_fresh_instances(self):
        assert get_decoder("mea") is not get_decoder("mea")

    def test_engine_validates_decoder_at_decode_time(self):
        engine = AlignmentEngine(FAST, cache=None, decoder="not-a-decoder")
        with pytest.raises(ConfigError, match="valid decoders"):
            engine.decode(balanced_plan(4))


class TestDecodedMatching:
    @pytest.mark.parametrize("name", ALL_DECODERS)
    def test_contract_on_a_balanced_plan(self, name):
        plan = balanced_plan(9, seed=3)
        decoded = get_decoder(name).decode(plan)
        assert isinstance(decoded, DecodedMatching)
        assert decoded.decoder == name
        assert decoded.matching.shape == (9,)
        assert decoded.matching.dtype == np.int64
        assert np.all(decoded.matching >= -1)
        assert np.all(decoded.matching < 9)
        assert decoded.decode_seconds >= 0.0
        assert decoded.posterior_ranked is (name == "row-argmax")
        # confidence: the matched cell's share of its row mass
        assert decoded.confidence.shape == (9,)
        assert np.all(decoded.confidence >= 0.0)
        assert np.all(decoded.confidence <= 1.0)
        matched = decoded.matching >= 0
        assert np.all(decoded.confidence[~matched] == 0.0)
        assert np.all(decoded.confidence[matched] > 0.0)
        # shed scores: ~0 on a balanced plan, and always in [0, 1]
        for scores, size in (
            (decoded.source_unmatchable, 9),
            (decoded.target_unmatchable, 9),
        ):
            assert scores.shape == (size,)
            assert np.all((scores >= 0.0) & (scores <= 1.0))
            assert np.all(scores < UNMATCHABLE_THRESHOLD)
        # convenience accessors
        assert decoded.n_source == 9
        assert decoded.n_matched == int(matched.sum())
        pairs = decoded.matched_pairs()
        assert pairs.shape == (decoded.n_matched, 2)
        assert np.array_equal(decoded.matching[pairs[:, 0]], pairs[:, 1])

    @pytest.mark.parametrize("name", ONE_TO_ONE)
    def test_one_to_one_decoders_never_reuse_a_column(self, name):
        plan = balanced_plan(9, seed=3)
        matching = get_decoder(name).decode(plan).matching
        cols = matching[matching >= 0]
        assert np.unique(cols).size == cols.size

    def test_row_argmax_confidence_is_the_row_share(self):
        plan = balanced_plan(7, seed=4)
        decoded = get_decoder("row-argmax").decode(plan)
        expected = plan.max(axis=1) / plan.sum(axis=1)
        np.testing.assert_allclose(decoded.confidence, expected)


class TestDecoderContracts:
    def test_row_argmax_matches_every_row(self):
        plan = balanced_plan(11, seed=0)
        matching = get_decoder("row-argmax").decode(plan).matching
        assert np.all(matching >= 0)
        np.testing.assert_array_equal(matching, np.argmax(plan, axis=1))

    def test_mutual_argmax_is_a_subset_of_row_argmax(self):
        # rows 0 and 1 collide on column 2; column 2's argmax is row 0,
        # so row 1 must come out unmatched
        plan = np.full((4, 4), 0.1)
        plan[0, 2] = 0.9
        plan[1, 2] = 0.8
        plan[2, 0] = 0.9
        plan[3, 1] = 0.9
        row = get_decoder("row-argmax").decode(plan).matching
        mutual = get_decoder("mutual-argmax").decode(plan).matching
        kept = mutual >= 0
        np.testing.assert_array_equal(mutual[kept], row[kept])
        assert mutual[1] == -1
        assert mutual[0] == 2 and mutual[2] == 0 and mutual[3] == 1

    def test_hungarian_square_balanced_is_the_classical_assignment(self):
        plan = balanced_plan(10, seed=1)
        matching = get_decoder("hungarian").decode(plan).matching
        assert np.all(matching >= 0)
        rows, cols = scipy.optimize.linear_sum_assignment(plan, maximize=True)
        expected = np.full(10, -1, dtype=np.int64)
        expected[rows] = cols
        np.testing.assert_array_equal(matching, expected)

    def test_hungarian_wide_plan_matches_every_row(self):
        """Satellite 1: non-square padding must never truncate-unmatch."""
        plan = balanced_plan(8, 12, seed=2)
        matching = get_decoder("hungarian").decode(plan).matching
        assert np.all(matching >= 0)
        assert np.unique(matching).size == 8
        rows, cols = scipy.optimize.linear_sum_assignment(plan, maximize=True)
        expected = np.full(8, -1, dtype=np.int64)
        expected[rows] = cols
        np.testing.assert_array_equal(matching, expected)

    def test_hungarian_tall_plan_unmatches_only_by_feasibility(self):
        plan = balanced_plan(12, 8, seed=2)
        matching = get_decoder("hungarian").decode(plan).matching
        assert int(np.sum(matching >= 0)) == 8  # every column used
        rows, cols = scipy.optimize.linear_sum_assignment(plan, maximize=True)
        expected = np.full(12, -1, dtype=np.int64)
        expected[rows] = cols
        np.testing.assert_array_equal(matching, expected)

    @pytest.mark.parametrize("name", ("hungarian", "mea"))
    def test_condemned_rows_are_unmatched_and_gating_protects_the_rest(
        self, name
    ):
        plan = balanced_plan(8, seed=5)
        plan[3] *= 0.01   # shed fraction 0.99: condemned
        plan[4] *= 0.8    # shed fraction 0.20: below the gate
        frac_src, _ = shed_scores(plan)
        assert frac_src[3] >= UNMATCHABLE_THRESHOLD
        assert frac_src[4] < UNMATCHABLE_THRESHOLD
        matching = get_decoder(name).decode(plan).matching
        assert matching[3] == -1
        keep = np.arange(8) != 3
        assert np.all(matching[keep] >= 0)

    @pytest.mark.parametrize("name", ALL_DECODERS)
    @pytest.mark.parametrize("shape", [(10, 10), (8, 12)])
    def test_sparse_and_dense_plans_decode_identically(self, name, shape):
        plan = balanced_plan(*shape, seed=6)
        dense = get_decoder(name).decode(plan)
        sparse = get_decoder(name).decode(sp.csr_array(plan))
        assert sp.issparse(sparse.plan)
        np.testing.assert_array_equal(dense.matching, sparse.matching)
        # dense and CSR marginal sums differ in the last ulp: atol, not 0
        np.testing.assert_allclose(
            dense.confidence, sparse.confidence, atol=1e-12
        )
        np.testing.assert_allclose(
            dense.source_unmatchable, sparse.source_unmatchable, atol=1e-12
        )

    def test_shed_scores_recover_marginal_deficits(self):
        plan = np.diag([1.0, 0.5, 0.25])
        source, target = shed_scores(plan)
        np.testing.assert_allclose(source, [0.0, 0.5, 0.75])
        np.testing.assert_allclose(target, [0.0, 0.5, 0.75])


class TestRowArgmaxParity:
    """Satellite 3: the default decode route is the old path, bit for bit."""

    def test_bitwise_parity_on_a_solved_plan(self):
        pair = bench_pair(seed=0)
        result = AlignmentEngine(FAST, cache=None).align(
            pair.source, pair.target
        )
        gt = pair.ground_truth
        base = evaluate_alignment(result, gt)
        routed = evaluate_alignment(result, gt, decoder="row-argmax")
        assert base == routed  # float equality: bitwise, not allclose

    def test_bitwise_parity_on_csr(self):
        pair = bench_pair(seed=1)
        result = AlignmentEngine(FAST, cache=None).align(
            pair.source, pair.target
        )
        csr = sp.csr_array(result.plan)
        gt = pair.ground_truth
        assert evaluate_alignment(csr, gt) == evaluate_alignment(
            csr, gt, decoder="row-argmax"
        )

    def test_bitwise_parity_under_ties(self):
        plan = np.ones((5, 7))
        gt = np.stack([np.arange(5), np.arange(5)], axis=1)
        assert evaluate_plan(plan, gt) == evaluate_alignment(
            plan, gt, decoder="row-argmax"
        )

    def test_engine_run_parity_and_stage_accounting(self):
        pair = bench_pair(seed=2)
        plain = AlignmentEngine(FAST, cache=None).run(
            pair.source, pair.target, pair.ground_truth
        )
        routed = AlignmentEngine(FAST, cache=None, decoder="row-argmax").run(
            pair.source, pair.target, pair.ground_truth
        )
        assert plain.metrics == routed.metrics
        assert plain.decoded is None
        assert "decode" not in plain.stage_seconds
        assert routed.decoded is not None
        assert routed.decoded.posterior_ranked
        assert "decode" in routed.stage_seconds

    def test_already_decoded_results_refuse_a_second_decoder(self):
        decoded = decode_plan(balanced_plan(6, seed=7))
        gt = np.stack([np.arange(6), np.arange(6)], axis=1)
        with pytest.raises(ValueError, match="already decoded"):
            evaluate_alignment(decoded, gt, decoder="hungarian")


class TestPermutationEquivariance:
    """Satellite 2: relabelling both graphs permutes the matching."""

    @pytest.mark.parametrize("name", ALL_DECODERS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_matching_is_equivariant(self, name, seed):
        n, m = 11, 13
        plan = balanced_plan(n, m, seed=seed)
        rng = np.random.default_rng(seed + 100)
        ps, pt = rng.permutation(n), rng.permutation(m)
        inv_pt = np.argsort(pt)
        base = get_decoder(name).decode(plan).matching
        permuted = get_decoder(name).decode(plan[np.ix_(ps, pt)]).matching
        expected = np.where(
            base[ps] >= 0, inv_pt[np.maximum(base[ps], 0)], -1
        )
        np.testing.assert_array_equal(permuted, expected)

    @pytest.mark.parametrize("name", ALL_DECODERS)
    def test_metrics_are_invariant(self, name):
        n, m = 11, 13
        plan = balanced_plan(n, m, seed=2)
        rng = np.random.default_rng(42)
        gt = np.stack([np.arange(n), rng.permutation(m)[:n]], axis=1)
        ps, pt = rng.permutation(n), rng.permutation(m)
        inv_ps, inv_pt = np.argsort(ps), np.argsort(pt)
        gt_perm = np.stack([inv_ps[gt[:, 0]], inv_pt[gt[:, 1]]], axis=1)
        base = evaluate_decoded(get_decoder(name).decode(plan), gt)
        permuted = evaluate_decoded(
            get_decoder(name).decode(plan[np.ix_(ps, pt)]), gt_perm
        )
        assert set(base) == set(permuted)
        for key in base:
            # summation order over the gt pairs changes: allclose
            np.testing.assert_allclose(permuted[key], base[key], rtol=1e-9)


@pytest.fixture(scope="module")
def partial_case():
    """One seeded partial pair solved by both partial backends."""
    graph = base_graph()
    pair = make_partial_pair(
        graph, PartialPairSpec(overlap=0.7), edge_noise=0.05, seed=1
    )
    cfg = replace(TINY, partial_mass=pair.overlap_fraction)
    results = {
        backend: AlignmentEngine(cfg, backend=backend, cache=None).align(
            pair.source, pair.target
        )
        for backend in ("partial-dummy", "partial-unbalanced")
    }
    return pair, results


class TestPartialDecoding:
    """Satellite 1: unmatchable detection as a decoder concern."""

    def test_fixture_exercises_the_nonsquare_path(self, partial_case):
        pair, results = partial_case
        assert pair.source.n_nodes != pair.target.n_nodes
        for result in results.values():
            condemned = (
                shed_scores(result.plan)[0] >= UNMATCHABLE_THRESHOLD
            )
            assert condemned.any(), "fixture no longer sheds any row"

    @pytest.mark.parametrize(
        "backend", ("partial-dummy", "partial-unbalanced")
    )
    def test_hungarian_unmatches_exactly_the_condemned_rows(
        self, partial_case, backend
    ):
        _, results = partial_case
        decoded = decode_plan(results[backend], "hungarian")
        condemned = decoded.source_unmatchable >= UNMATCHABLE_THRESHOLD
        np.testing.assert_array_equal(condemned, decoded.matching < 0)

    def test_mea_unmatch_set_covers_the_condemned_rows(self, partial_case):
        _, results = partial_case
        decoded = decode_plan(results["partial-dummy"], "mea")
        condemned = decoded.source_unmatchable >= UNMATCHABLE_THRESHOLD
        assert np.all(~condemned | (decoded.matching < 0))

    @pytest.mark.parametrize(
        "backend", ("partial-dummy", "partial-unbalanced")
    )
    def test_regression_against_unmatchable_detection(
        self, partial_case, backend
    ):
        """The decoder's unmatch decision IS the detector's threshold
        call: flagging by shed score at ``UNMATCHABLE_THRESHOLD`` and
        flagging by the hungarian unmatched set give identical
        precision/recall on the seeded pair."""
        pair, results = partial_case
        decoded = decode_plan(results[backend], "hungarian")
        by_score = unmatchable_detection(
            decoded.source_unmatchable,
            pair.source_matchable,
            threshold=UNMATCHABLE_THRESHOLD,
        )
        by_decoder = unmatchable_detection(
            (decoded.matching < 0).astype(float),
            pair.source_matchable,
            threshold=0.5,
        )
        assert by_decoder["n_flagged"] == by_score["n_flagged"]
        assert by_decoder["precision"] == by_score["precision"]
        assert by_decoder["recall"] == by_score["recall"]

    def test_partial_results_evaluate_through_any_decoder(self, partial_case):
        pair, results = partial_case
        report = evaluate_alignment(
            results["partial-dummy"], pair.ground_truth, decoder="hungarian"
        )
        assert set(report) == {"hits@1", "hits@5", "hits@10", "hits@30", "mrr"}
        assert 0.0 <= report["hits@1"] <= 100.0


class TestSparsePartitionedDecode:
    def test_partitioned_alignment_decodes_without_densifying(self):
        pair = bench_pair(seed=3, n_per_block=12)
        engine = AlignmentEngine(
            FAST,
            backend="sparse",
            cache=None,
            backend_options={"n_parts": 2, "executor": "serial"},
        )
        result = engine.align(pair.source, pair.target)
        assert sp.issparse(result.plan)
        for name in ("row-argmax", "hungarian"):
            decoded = decode_plan(result, name)
            assert sp.issparse(decoded.plan)
            assert decoded.matching.shape == (pair.source.n_nodes,)
            report = evaluate_decoded(decoded, pair.ground_truth, ks=(1, 5))
            assert 0.0 <= report["hits@1"] <= 100.0


class TestServeDecoder:
    def test_per_job_decoder_excluded_from_coalescing(self):
        """Two jobs on the same pair with different decoders share one
        stacked solve; the decode stage runs per job."""
        pair = bench_pair(seed=4)
        service = AlignmentService(
            FAST, cache=PlanCache(), workers=1, max_batch=8
        )
        plain = service.submit(
            pair.source, pair.target, ground_truth=pair.ground_truth
        )
        hung = service.submit(
            pair.source, pair.target, ground_truth=pair.ground_truth,
            decoder="hungarian",
        )
        with service:
            assert wait_all([plain, hung], timeout=120)
        assert plain.batch_size == 2
        assert hung.batch_size == 2
        assert plain.result.decoded is None
        assert hung.result.decoded is not None
        assert hung.result.decoded.decoder == "hungarian"
        np.testing.assert_array_equal(
            plain.result.result.plan, hung.result.result.plan
        )
        assert set(plain.result.metrics) == set(hung.result.metrics)

    def test_service_default_decoder_and_per_job_override(self):
        pair = bench_pair(seed=5)
        service = AlignmentService(
            FAST, cache=PlanCache(), workers=1, decoder="mutual-argmax"
        )
        inherited = service.submit(pair.source, pair.target)
        overridden = service.submit(
            pair.source, pair.target, decoder="row-argmax"
        )
        with service:
            assert wait_all([inherited, overridden], timeout=120)
        assert inherited.result.decoded.decoder == "mutual-argmax"
        assert overridden.result.decoded.decoder == "row-argmax"

    def test_unknown_decoder_rejected_before_the_queue(self):
        pair = bench_pair(seed=6)
        with pytest.raises(ConfigError, match="valid decoders"):
            AlignmentService(FAST, cache=PlanCache(), decoder="nope")
        service = AlignmentService(FAST, cache=PlanCache())
        with pytest.raises(ConfigError, match="valid decoders"):
            service.submit(pair.source, pair.target, decoder="nope")
