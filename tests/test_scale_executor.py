"""Bitwise serial-vs-parallel regression tests for the block executor.

The executor is pure scheduling: the process-pool and thread-pool
backends must reproduce the serial loop's block results **exactly** —
the same contract ``tests/test_fused_objective.py`` pins for the fused
hot path.  Pickling float64 arrays is lossless and every worker runs
the identical single-threaded code path, so any bit of drift means a
scheduling backend leaked into the numerics.
"""

import numpy as np
import pytest

from repro.core import SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.exceptions import GraphError
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.scale import (
    DivideAndConquerAligner,
    align_block,
    resolve_executor,
    run_blocks,
)

FAST_CFG = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=40, sinkhorn_iter=30,
    track_history=False,
)


def pair(seed=0):
    graph = stochastic_block_model([16] * 3, 0.35, 0.01, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 50, words_per_node=10, seed=seed + 1
    )
    graph = graph.with_features(feats)
    return make_semi_synthetic_pair(graph, seed=seed + 2)


def blocks_of(p, n_parts=3):
    aligner = DivideAndConquerAligner(FAST_CFG, n_parts=n_parts)
    source_parts = aligner._partition_source(p.source)
    from repro.scale import assign_target

    target_parts = assign_target(p.source, p.target, source_parts)
    return [
        (p.source.subgraph(s), p.target.subgraph(t))
        for s, t in zip(source_parts, target_parts)
        if s.size and t.size
    ]


class TestBitwiseExecutorEquality:
    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_block_results_bitwise_equal_serial(self, backend):
        p = pair(seed=1)
        blocks = blocks_of(p)
        serial, serial_used = run_blocks(FAST_CFG, blocks, executor="serial")
        pooled, pooled_used = run_blocks(
            FAST_CFG, blocks, executor=backend, max_workers=2
        )
        assert serial_used == "serial"
        assert pooled_used in (backend, "serial")  # serial = pool fallback
        assert len(serial) == len(pooled) == len(blocks)
        for ref, out in zip(serial, pooled):
            np.testing.assert_array_equal(ref.plan, out.plan)
            np.testing.assert_array_equal(
                ref.extras["beta_source"], out.extras["beta_source"]
            )
            np.testing.assert_array_equal(
                ref.extras["beta_target"], out.extras["beta_target"]
            )

    def test_full_pipeline_bitwise_equal(self):
        """End to end: stitched + repaired plans identical across
        executors (repair is deterministic post-processing, so bitwise
        block results imply bitwise final plans)."""
        p = pair(seed=2)
        serial = DivideAndConquerAligner(FAST_CFG, n_parts=3).fit(
            p.source, p.target
        )
        assert serial.extras["executor"] == "serial"
        pooled = DivideAndConquerAligner(
            FAST_CFG, n_parts=3, executor="process", max_workers=2
        ).fit(p.source, p.target)
        assert serial.plan.shape == pooled.plan.shape
        diff = serial.plan - pooled.plan
        assert diff.nnz == 0 or np.max(np.abs(diff.data)) == 0.0
        np.testing.assert_array_equal(
            serial.plan.toarray(), pooled.plan.toarray()
        )

    def test_result_order_matches_input_order(self):
        p = pair(seed=3)
        blocks = blocks_of(p)
        results, _ = run_blocks(
            FAST_CFG, blocks, executor="thread", max_workers=3
        )
        for (sub_s, sub_t), res in zip(blocks, results):
            assert res.plan.shape == (sub_s.n_nodes, sub_t.n_nodes)


class TestExecutorResolution:
    def test_known_backends(self):
        assert resolve_executor("serial") == "serial"
        assert resolve_executor("thread") == "thread"
        assert resolve_executor("process") == "process"
        assert resolve_executor("auto") in ("serial", "process")

    def test_unknown_backend_rejected(self):
        with pytest.raises(GraphError):
            resolve_executor("distributed")
        with pytest.raises(GraphError):
            run_blocks(FAST_CFG, [], executor="gpu")

    def test_align_block_is_module_level(self):
        """The pool target must be picklable by qualified name."""
        import pickle

        assert pickle.loads(pickle.dumps(align_block)) is align_block

    def test_sandboxed_fork_falls_back_to_serial(self, monkeypatch):
        """Worker spawning is lazy (happens on submit); a sandbox that
        forbids fork must degrade to the serial loop with identical
        results, not crash the fit."""
        import multiprocessing.process as mp_process

        p = pair(seed=1)
        blocks = blocks_of(p)
        reference, _ = run_blocks(FAST_CFG, blocks, executor="serial")

        def forbidden(self):
            raise PermissionError("sandbox: fork forbidden")

        monkeypatch.setattr(mp_process.BaseProcess, "start", forbidden)
        results, used = run_blocks(
            FAST_CFG, blocks, executor="process", max_workers=2
        )
        assert used == "serial"
        for ref, out in zip(reference, results):
            np.testing.assert_array_equal(ref.plan, out.plan)

    def test_worker_errors_propagate(self, monkeypatch):
        """Exceptions raised by a block solve must escape, not trigger
        a silent serial re-run."""
        import repro.scale.executor as executor_module

        p = pair(seed=1)
        blocks = blocks_of(p)

        def failing_block(config, source, target, backend="fused-dense"):
            raise OSError("block solve exploded")

        monkeypatch.setattr(executor_module, "align_block", failing_block)
        with pytest.raises(OSError, match="block solve exploded"):
            run_blocks(FAST_CFG, blocks, executor="thread", max_workers=2)
