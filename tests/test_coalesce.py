"""Tests for the multi-pair coalesced solve (repro.engine.coalesce).

The load-bearing property is the bitwise contract: coalescing is pure
scheduling, so every pair's plan must be bit-for-bit what a direct
single-pair engine run returns — across batch compositions, portfolio
pruning, per-pair init plans and early-converged pairs.
"""

import numpy as np
import pytest

from repro.core import SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.engine import AlignmentEngine, coalescible, solve_coalesced
from repro.exceptions import ConfigError
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words

FAST = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=25, sinkhorn_iter=20,
    track_history=False,
)


def bench_pair(seed=0, n_per_block=12):
    graph = stochastic_block_model([n_per_block] * 3, 0.4, 0.02, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 30, words_per_node=6, seed=seed + 1
    )
    graph = graph.with_features(feats)
    graph.node_labels = None
    return make_semi_synthetic_pair(graph, edge_noise=0.1, seed=seed + 2)


def direct_plan(pair, config=FAST, **plan_kwargs):
    engine = AlignmentEngine(config, cache=None)
    problem = engine.plan(pair.source, pair.target, **plan_kwargs)
    return engine.solve(problem).plan


class TestCoalescedBitwise:
    def test_batch_of_distinct_pairs_matches_direct_runs(self):
        pairs = [bench_pair(seed=s) for s in range(4)]
        engine = AlignmentEngine(FAST, cache=None)
        problems = [engine.plan(p.source, p.target) for p in pairs]
        results = solve_coalesced(problems)
        assert len(results) == len(pairs)
        for pair, result in zip(pairs, results):
            np.testing.assert_array_equal(result.plan, direct_plan(pair))
            assert result.extras["backend"] == "coalesced"
            assert result.extras["coalesced"]["batch_size"] == 4

    def test_single_problem_batch_matches_direct_run(self):
        pair = bench_pair(seed=9)
        engine = AlignmentEngine(FAST, cache=None)
        [result] = solve_coalesced([engine.plan(pair.source, pair.target)])
        np.testing.assert_array_equal(result.plan, direct_plan(pair))

    def test_per_pair_init_plans_respected(self):
        """An informative init on one pair (skipping its portfolio)
        must not perturb the other pairs' full portfolios."""
        pairs = [bench_pair(seed=s) for s in (3, 5)]
        n = pairs[0].source.n_nodes
        m = pairs[0].target.n_nodes
        init = np.full((n, m), 1.0 / (n * m))
        init[0, 0] *= 2.0
        engine = AlignmentEngine(FAST, cache=None)
        problems = [
            engine.plan(pairs[0].source, pairs[0].target, init_plan=init),
            engine.plan(pairs[1].source, pairs[1].target),
        ]
        results = solve_coalesced(problems)
        np.testing.assert_array_equal(
            results[0].plan, direct_plan(pairs[0], init_plan=init)
        )
        np.testing.assert_array_equal(results[1].plan, direct_plan(pairs[1]))
        # the init-plan pair committed to a single start; the other ran
        # the multi-start portfolio
        assert len(results[0].extras["start_objectives"]) == 1
        assert len(results[1].extras["start_objectives"]) > 1

    def test_portfolio_pruning_stays_within_each_pair(self):
        """With pruning enabled, coalesced pruning decisions must match
        each pair's own single-pair schedule exactly (same plans)."""
        config = SLOTAlignConfig(
            n_bases=2, structure_lr=0.1, max_outer_iter=40,
            sinkhorn_iter=20, track_history=False,
            portfolio_prune_iter=5, anneal=False,
        )
        pairs = [bench_pair(seed=s) for s in (11, 13, 17)]
        engine = AlignmentEngine(config, cache=None)
        problems = [engine.plan(p.source, p.target) for p in pairs]
        results = solve_coalesced(problems)
        for pair, result in zip(pairs, results):
            direct = AlignmentEngine(config, cache=None).align(
                pair.source, pair.target
            )
            np.testing.assert_array_equal(result.plan, direct.plan)
            assert (
                result.extras["portfolio"]["pruned"]
                == direct.extras["portfolio"]["pruned"]
            )


class TestCoalescibility:
    def test_compatible_and_incompatible_problems(self):
        a, b = bench_pair(seed=0), bench_pair(seed=1)
        small = bench_pair(seed=2, n_per_block=8)
        engine = AlignmentEngine(FAST, cache=None)
        other = AlignmentEngine(
            SLOTAlignConfig(n_bases=2, structure_lr=0.2), cache=None
        )
        pa = engine.plan(a.source, a.target)
        pb = engine.plan(b.source, b.target)
        assert coalescible(pa, pb)
        assert not coalescible(pa, engine.plan(small.source, small.target))
        assert not coalescible(pa, other.plan(a.source, a.target))

    def test_mismatched_batch_raises(self):
        a = bench_pair(seed=0)
        small = bench_pair(seed=2, n_per_block=8)
        engine = AlignmentEngine(FAST, cache=None)
        problems = [
            engine.plan(a.source, a.target),
            engine.plan(small.source, small.target),
        ]
        with pytest.raises(ConfigError, match="coalesced"):
            solve_coalesced(problems)

    def test_empty_batch(self):
        assert solve_coalesced([]) == []
