"""Tests for node permutation / pair construction (repro.graphs.permutation)."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    erdos_renyi_graph,
    ground_truth_from_permutation,
    invert_permutation,
    permutation_matrix,
    permute_graph,
)


def featured_graph(seed=0):
    g = erdos_renyi_graph(25, 0.2, seed=seed)
    rng = np.random.default_rng(seed + 100)
    return g.with_features(rng.random((25, 8)))


class TestPermutationMatrix:
    def test_is_permutation(self):
        p = permutation_matrix(np.array([2, 0, 1])).toarray()
        np.testing.assert_array_equal(p.sum(axis=0), 1)
        np.testing.assert_array_equal(p.sum(axis=1), 1)

    def test_rejects_non_permutation(self):
        with pytest.raises(GraphError):
            permutation_matrix(np.array([0, 0, 1]))


class TestPermuteGraph:
    def test_edge_count_preserved(self):
        g = featured_graph()
        h, _ = permute_graph(g, seed=1)
        assert h.n_edges == g.n_edges

    def test_adjacency_relabelled_consistently(self):
        g = featured_graph(seed=2)
        h, perm = permute_graph(g, seed=3)
        a, b = g.dense_adjacency(), h.dense_adjacency()
        for u, v in g.edge_list():
            assert b[perm[u], perm[v]] == a[u, v]

    def test_features_follow_nodes(self):
        g = featured_graph(seed=4)
        h, perm = permute_graph(g, seed=5)
        for i in range(g.n_nodes):
            np.testing.assert_array_equal(h.features[perm[i]], g.features[i])

    def test_degree_multiset_invariant(self):
        g = featured_graph(seed=6)
        h, _ = permute_graph(g, seed=7)
        np.testing.assert_array_equal(np.sort(g.degrees), np.sort(h.degrees))

    def test_explicit_permutation(self):
        g = featured_graph(seed=8)
        perm = np.roll(np.arange(25), 5)
        h, returned = permute_graph(g, perm=perm)
        np.testing.assert_array_equal(returned, perm)

    def test_matches_matrix_formula(self):
        """Permuted adjacency equals P^T A P (paper Sec. V-A)."""
        g = featured_graph(seed=9)
        h, perm = permute_graph(g, seed=10)
        p = permutation_matrix(perm).toarray()
        expected = p.T @ g.dense_adjacency() @ p
        np.testing.assert_allclose(h.dense_adjacency(), expected, atol=1e-12)


class TestHelpers:
    def test_ground_truth_pairs(self):
        gt = ground_truth_from_permutation(np.array([1, 2, 0]))
        np.testing.assert_array_equal(gt, [[0, 1], [1, 2], [2, 0]])

    def test_invert_permutation(self):
        perm = np.array([2, 0, 3, 1])
        inv = invert_permutation(perm)
        np.testing.assert_array_equal(perm[inv], np.arange(4))
        np.testing.assert_array_equal(inv[perm], np.arange(4))
