"""Tests for the Duchi simplex projection (repro.ot.simplex)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.ot import is_in_simplex, project_concatenated_simplices, project_simplex


class TestProjectSimplex:
    def test_already_on_simplex_unchanged(self):
        v = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_simplex(v), v, atol=1e-12)

    def test_uniform_from_constant(self):
        out = project_simplex(np.full(4, 10.0))
        np.testing.assert_allclose(out, 0.25)

    def test_single_element(self):
        np.testing.assert_allclose(project_simplex(np.array([-3.0])), [1.0])

    def test_dominant_coordinate(self):
        out = project_simplex(np.array([100.0, 0.0, 0.0]))
        np.testing.assert_allclose(out, [1.0, 0.0, 0.0])

    def test_custom_radius(self):
        out = project_simplex(np.array([1.0, 1.0]), radius=4.0)
        np.testing.assert_allclose(out, [2.0, 2.0])

    def test_rejects_2d(self):
        with pytest.raises(ShapeError):
            project_simplex(np.ones((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            project_simplex(np.array([]))

    def test_rejects_nonpositive_radius(self):
        with pytest.raises(ValueError):
            project_simplex(np.ones(3), radius=0.0)

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_output_always_on_simplex(self, values):
        out = project_simplex(np.array(values))
        assert is_in_simplex(out, atol=1e-7)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
            max_size=15,
        )
    )
    def test_projection_is_closest_point(self, values):
        """The projection beats random simplex points in distance."""
        v = np.array(values)
        proj = project_simplex(v)
        rng = np.random.default_rng(0)
        for _ in range(20):
            candidate = rng.dirichlet(np.ones(v.shape[0]))
            assert np.linalg.norm(v - proj) <= np.linalg.norm(v - candidate) + 1e-9

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    def test_idempotent(self, values):
        once = project_simplex(np.array(values))
        twice = project_simplex(once)
        np.testing.assert_allclose(once, twice, atol=1e-9)

    def test_order_preserving(self):
        v = np.array([3.0, 1.0, 2.0])
        out = project_simplex(v)
        assert out[0] >= out[2] >= out[1]


class TestConcatenatedSimplices:
    def test_two_blocks(self):
        alpha = np.array([5.0, 0.0, 0.0, 5.0])
        out = project_concatenated_simplices(alpha, 2)
        np.testing.assert_allclose(out, [1.0, 0.0, 0.0, 1.0])

    def test_block_sums(self):
        rng = np.random.default_rng(1)
        alpha = rng.standard_normal(8)
        out = project_concatenated_simplices(alpha, 4)
        assert out[:4].sum() == pytest.approx(1.0)
        assert out[4:].sum() == pytest.approx(1.0)

    def test_bad_block_size(self):
        with pytest.raises(ShapeError):
            project_concatenated_simplices(np.ones(5), 2)


class TestIsInSimplex:
    def test_accepts_valid(self):
        assert is_in_simplex(np.array([0.5, 0.5]))

    def test_rejects_negative(self):
        assert not is_in_simplex(np.array([1.5, -0.5]))

    def test_rejects_wrong_sum(self):
        assert not is_in_simplex(np.array([0.3, 0.3]))
