"""Tests for IterateHistory (repro.core.convergence)."""

import numpy as np

from repro.core import IterateHistory


class TestIterateHistory:
    def test_record(self):
        h = IterateHistory()
        h.record(1.0, 0.1, 0.2)
        h.record(0.5, 0.05, 0.1)
        assert h.n_iterations == 2
        assert h.objective_values == [1.0, 0.5]

    def test_record_without_objective(self):
        h = IterateHistory()
        h.record(None, 0.1, 0.2)
        assert h.objective_values == []
        assert h.n_iterations == 1

    def test_monotone_detection(self):
        h = IterateHistory()
        for value in (3.0, 2.0, 1.5, 1.5):
            h.record(value, 0.0, 0.0)
        assert h.is_monotone_decreasing()

    def test_non_monotone_detected(self):
        h = IterateHistory()
        for value in (1.0, 2.0):
            h.record(value, 0.0, 0.0)
        assert not h.is_monotone_decreasing()

    def test_slack_tolerated(self):
        h = IterateHistory()
        for value in (1.0, 1.0 + 1e-10):
            h.record(value, 0.0, 0.0)
        assert h.is_monotone_decreasing(slack=1e-8)

    def test_total_squared_movement(self):
        h = IterateHistory()
        h.record(None, 3.0, 4.0)
        assert h.total_squared_movement() == 25.0

    def test_empty_history_monotone(self):
        assert IterateHistory().is_monotone_decreasing()
