"""Tests for the sweep runner (repro.eval.robustness)."""

import numpy as np

from repro.baselines import GWDAligner, KNNAligner
from repro.datasets import load_cora, make_semi_synthetic_pair, truncate_feature_columns
from repro.eval import evaluate_on_pair, run_feature_sweep, run_structure_sweep


def tiny_graph():
    return truncate_feature_columns(load_cora(scale=0.025), 100)


class TestStructureSweep:
    def test_shapes_and_levels(self):
        graph = tiny_graph()
        aligners = {"KNN": KNNAligner(), "GWD": GWDAligner(max_iter=20)}
        results = run_structure_sweep(graph, aligners, levels=(0.0, 0.3), seed=0)
        assert {r.method for r in results} == {"KNN", "GWD"}
        for r in results:
            assert r.levels == [0.0, 0.3]
            assert len(r.hits) == 2
            assert len(r.runtimes) == 2

    def test_knn_flat_gwd_degrades(self):
        graph = tiny_graph()
        aligners = {"KNN": KNNAligner(), "GWD": GWDAligner(max_iter=40)}
        results = {
            r.method: r
            for r in run_structure_sweep(
                graph, aligners, levels=(0.0, 0.5), seed=1
            )
        }
        knn = results["KNN"].hits
        gwd = results["GWD"].hits
        assert knn[1] == knn[0]  # feature-only: structure-noise immune
        assert gwd[1] < gwd[0]  # structure-only: collapses


class TestFeatureSweep:
    def test_knn_degrades_under_permutation(self):
        graph = tiny_graph()
        aligners = {"KNN": KNNAligner()}
        results = run_feature_sweep(
            graph,
            aligners,
            levels=(0.0, 0.8),
            transform="permutation",
            edge_noise=0.0,
            seed=2,
        )
        hits = results[0].hits
        assert hits[1] < hits[0]

    def test_truncation_transform_applies(self):
        graph = tiny_graph()
        results = run_feature_sweep(
            graph,
            {"KNN": KNNAligner()},
            levels=(0.5,),
            transform="truncation",
            seed=3,
        )
        assert len(results[0].hits) == 1


class TestEvaluateOnPair:
    def test_table_structure(self):
        graph = tiny_graph()
        pair = make_semi_synthetic_pair(graph, edge_noise=0.1, seed=4)
        table = evaluate_on_pair(
            {"KNN": KNNAligner()}, pair, ks=(1, 5)
        )
        row = table["KNN"]
        assert set(row) == {"hits@1", "hits@5", "time"}
        assert row["hits@5"] >= row["hits@1"]
        assert np.isfinite(row["time"])
