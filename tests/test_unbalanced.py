"""Tests for unbalanced / partial OT (repro.ot.unbalanced)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.ot import (
    partial_wasserstein,
    sinkhorn_log,
    sinkhorn_unbalanced,
    sinkhorn_unbalanced_log_kernel,
)


def random_problem(n, m, seed=0):
    rng = np.random.default_rng(seed)
    cost = rng.random((n, m))
    mu = rng.dirichlet(np.ones(n))
    nu = rng.dirichlet(np.ones(m))
    return cost, mu, nu


class TestUnbalancedSinkhorn:
    def test_plan_nonnegative_finite(self):
        cost, mu, nu = random_problem(6, 8)
        result = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.1, rho=1.0)
        assert np.all(result.plan >= 0)
        assert np.all(np.isfinite(result.plan))

    def test_large_rho_approaches_balanced(self):
        cost, mu, nu = random_problem(5, 5, seed=1)
        balanced = sinkhorn_log(cost, mu, nu, epsilon=0.1, max_iter=5000).plan
        relaxed = sinkhorn_unbalanced(
            cost, mu, nu, epsilon=0.1, rho=1000.0, max_iter=5000
        ).plan
        np.testing.assert_allclose(relaxed, balanced, atol=5e-3)

    def test_small_rho_sheds_mass_from_expensive_rows(self):
        """A row whose every target is expensive should lose mass."""
        cost = np.full((3, 3), 0.1)
        cost[0, :] = 10.0  # node 0 has no cheap partner
        mu = nu = np.full(3, 1 / 3)
        plan = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.05, rho=0.1).plan
        assert plan[0].sum() < 0.5 * plan[1].sum()

    def test_accepts_unnormalised_marginals(self):
        cost, _, _ = random_problem(4, 4, seed=2)
        mu = np.array([1.0, 2.0, 1.0, 0.5])
        nu = np.array([0.5, 0.5, 2.0, 1.0])
        result = sinkhorn_unbalanced(cost, mu, nu, epsilon=0.1, rho=0.5)
        assert result.plan.sum() > 0

    def test_convergence_checked_on_final_iteration(self):
        """Regression: ``max_iter % 10 != 0`` used to skip the last
        convergence check, reporting converged=False after converging."""
        cost, mu, nu = random_problem(5, 5, seed=6)
        long = sinkhorn_unbalanced(
            cost, mu, nu, epsilon=0.1, rho=1.0, max_iter=1000, tol=1e-9
        )
        assert long.converged
        # rerun with a budget ending past the converged iterate but off
        # the every-10th grid: the final-iteration check must fire
        odd_budget = long.n_iterations + 1
        if odd_budget % 10 == 0:
            odd_budget += 1
        clipped = sinkhorn_unbalanced(
            cost, mu, nu, epsilon=0.1, rho=1.0, max_iter=odd_budget, tol=1e-9
        )
        assert clipped.converged

    def test_err_is_relaxed_fixed_point_residual(self):
        """A converged small-rho run must report a small residual: the
        balanced row-marginal error is large by design there."""
        cost, mu, nu = random_problem(6, 6, seed=7)
        result = sinkhorn_unbalanced(
            cost, mu, nu, epsilon=0.1, rho=0.05, max_iter=5000, tol=1e-12
        )
        assert result.converged
        assert result.marginal_error < 1e-8
        # the balanced residual really is large for this run — the old
        # reporting would have called this "error"
        balanced_residual = float(
            np.abs(result.plan.sum(axis=1) - mu).sum()
        )
        assert balanced_residual > 1e-2

    def test_parameter_validation(self):
        cost, mu, nu = random_problem(3, 3)
        with pytest.raises(ValueError):
            sinkhorn_unbalanced(cost, mu, nu, epsilon=-1.0)
        with pytest.raises(ValueError):
            sinkhorn_unbalanced(cost, mu, nu, rho=0.0)
        with pytest.raises(ShapeError):
            sinkhorn_unbalanced(cost, mu[:2], nu)


class TestUnbalancedLogKernel:
    """The log-domain scaling behind the partial-unbalanced backend."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_linear_domain_on_moderate_kernels(self, seed):
        """Same fixed point as :func:`sinkhorn_unbalanced` when the
        kernel is small enough for the linear domain to survive."""
        cost, mu, nu = random_problem(6, 7, seed=seed)
        eps, rho = 0.1, 1.0
        linear = sinkhorn_unbalanced(
            cost, mu, nu, epsilon=eps, rho=rho, max_iter=5000, tol=1e-13
        )
        log_kernel = -cost / eps + np.log(np.outer(mu, nu))
        logd = sinkhorn_unbalanced_log_kernel(
            log_kernel, mu, nu, epsilon=eps, rho=rho, max_iter=5000, tol=1e-13
        )
        np.testing.assert_allclose(logd.plan, linear.plan, atol=1e-12)

    def test_fixed_point_residual_decreases_with_iterations(self):
        """The generalised scaling (exponent < 1) is a contraction: the
        reported residual must shrink monotonically to ~0."""
        rng = np.random.default_rng(5)
        log_kernel = rng.normal(scale=30.0, size=(8, 8))
        log_kernel -= log_kernel.max()
        mu = rng.dirichlet(np.ones(8))
        nu = rng.dirichlet(np.ones(8))
        residuals = [
            sinkhorn_unbalanced_log_kernel(
                log_kernel, mu, nu, epsilon=0.5, rho=1.0,
                max_iter=budget, tol=0.0,
            ).marginal_error
            for budget in (5, 20, 80)
        ]
        assert residuals[1] <= residuals[0]
        assert residuals[2] <= residuals[1]
        assert residuals[-1] < 1e-8

    def test_kernel_shift_rescales_mass_by_the_documented_law(self):
        """The unbalanced fixed point is NOT shift-invariant: adding a
        constant ``c`` to the log kernel multiplies the plan's total
        mass by ``exp(c(1−x)/(1+x))`` for scaling exponent
        ``x = ρ/(ρ+ε)``.  This is exactly why the partial-unbalanced
        backend pins ``max(log_kernel) = 0`` before projecting — a pin
        on the rationale, not just the workaround."""
        rng = np.random.default_rng(7)
        log_kernel = rng.normal(scale=20.0, size=(6, 6))
        log_kernel -= log_kernel.max()
        mu = rng.dirichlet(np.ones(6))
        nu = rng.dirichlet(np.ones(6))
        eps, rho, shift = 0.5, 1.0, 2.0
        base = sinkhorn_unbalanced_log_kernel(
            log_kernel, mu, nu, epsilon=eps, rho=rho, max_iter=5000, tol=1e-14
        )
        shifted = sinkhorn_unbalanced_log_kernel(
            log_kernel + shift, mu, nu,
            epsilon=eps, rho=rho, max_iter=5000, tol=1e-14,
        )
        exponent = rho / (rho + eps)
        predicted = np.exp(shift * (1.0 - exponent) / (1.0 + exponent))
        assert shifted.plan.sum() / base.plan.sum() == pytest.approx(
            predicted, rel=1e-10
        )

    def test_survives_log_scales_that_underflow_linear_kernels(self):
        """A kernel hundreds of nats deep (the proximal π-update's
        reality) must still produce a finite, massive plan."""
        rng = np.random.default_rng(9)
        log_kernel = rng.normal(scale=200.0, size=(7, 7))
        log_kernel -= log_kernel.max()
        mu = rng.dirichlet(np.ones(7))
        nu = rng.dirichlet(np.ones(7))
        result = sinkhorn_unbalanced_log_kernel(
            log_kernel, mu, nu, epsilon=1.0, rho=1.0, max_iter=500, tol=1e-12
        )
        assert np.all(np.isfinite(result.plan))
        assert np.all(result.plan >= 0)
        assert result.plan.sum() > 0

    def test_parameter_validation(self):
        rng = np.random.default_rng(3)
        log_kernel = rng.normal(size=(4, 4))
        mu = rng.dirichlet(np.ones(4))
        nu = rng.dirichlet(np.ones(4))
        with pytest.raises(ValueError):
            sinkhorn_unbalanced_log_kernel(log_kernel, mu, nu, epsilon=0.0)
        with pytest.raises(ValueError):
            sinkhorn_unbalanced_log_kernel(
                log_kernel, mu, nu, epsilon=1.0, rho=-1.0
            )
        with pytest.raises(ShapeError):
            sinkhorn_unbalanced_log_kernel(
                log_kernel[0], mu, nu, epsilon=1.0
            )


class TestPartialWasserstein:
    def test_total_mass_honours_documented_contract(self):
        """Regression: the plan used to total ``mass/(1+slack)`` while
        the docstring promised ``mass``."""
        cost, mu, nu = random_problem(6, 6, seed=3)
        for mass in (0.5, 0.8, 1.0):
            plan = partial_wasserstein(cost, mu, nu, mass=mass)
            assert plan.sum() == pytest.approx(mass, rel=1e-12)

    def test_keeps_cheap_pairs(self):
        """Partial OT should drop the most expensive correspondences."""
        n = 5
        cost = np.full((n, n), 5.0)
        np.fill_diagonal(cost, 0.0)
        cost[n - 1, n - 1] = 50.0  # node 4's own match is terrible
        mu = nu = np.full(n, 1 / n)
        plan = partial_wasserstein(cost, mu, nu, mass=0.8, epsilon=0.02)
        shipped = plan.sum(axis=1)
        assert shipped[n - 1] < 0.5 * shipped[0]

    def test_mass_validation(self):
        cost, mu, nu = random_problem(3, 3)
        with pytest.raises(ValueError):
            partial_wasserstein(cost, mu, nu, mass=0.0)
        with pytest.raises(ValueError):
            partial_wasserstein(cost, mu, nu, mass=1.5)

    def test_nonnegative(self):
        cost, mu, nu = random_problem(5, 7, seed=4)
        plan = partial_wasserstein(cost, mu, nu, mass=0.6)
        assert np.all(plan >= 0)

    @pytest.mark.parametrize("seed", range(8))
    def test_marginals_never_exceed_budgets(self, seed):
        """The dummy-sink reduction makes this a theorem, not a
        numerical accident: each real row/column marginal of the
        extended balanced problem *is* the budget, so the real block
        can only undershoot it.  (The soft KL relaxation deliberately
        does NOT guarantee this — its marginals can overshoot.)"""
        cost, mu, nu = random_problem(6, 8, seed=seed)
        for mass in (0.4, 0.7, 1.0):
            plan = partial_wasserstein(cost, mu, nu, mass=mass)
            # 1e-8 headroom: at mass=1.0 the reduction is a plain
            # balanced solve and the finite Sinkhorn budget leaves a
            # ~1e-10 marginal residual (convergence error, not overshoot)
            assert np.all(plan.sum(axis=1) <= mu + 1e-8)
            assert np.all(plan.sum(axis=0) <= nu + 1e-8)
            assert plan.sum() == pytest.approx(mass, rel=1e-12)
