"""Tests for report formatting (repro.eval.reporting)."""

from repro.eval import SweepResult, format_sweep, format_table


class TestFormatTable:
    def test_contains_rows_and_columns(self):
        rows = {
            "SLOTAlign": {"hits@1": 66.0, "time": 4.9},
            "KNN": {"hits@1": 3.31, "time": 0.9},
        }
        text = format_table(rows, title="Table II")
        assert "Table II" in text
        assert "SLOTAlign" in text
        assert "66.00" in text
        assert "hits@1" in text

    def test_missing_column_dash(self):
        rows = {"a": {"x": 1.0}, "b": {}}
        text = format_table(rows, columns=["x"])
        assert "-" in text

    def test_empty(self):
        assert "empty" in format_table({})

    def test_column_order_respected(self):
        rows = {"m": {"b": 1.0, "a": 2.0}}
        text = format_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")


class TestFormatSweep:
    def test_levels_and_methods(self):
        sweep = [
            SweepResult("SLOTAlign", [0.0, 0.2], [100.0, 90.0]),
            SweepResult("GWD", [0.0, 0.2], [100.0, 10.0]),
        ]
        text = format_sweep(sweep, title="Fig. 6")
        assert "Fig. 6" in text
        assert "SLOTAlign" in text
        assert "0.20" in text
        assert "90.0" in text

    def test_empty(self):
        assert "empty" in format_sweep([])

    def test_as_dict_roundtrip(self):
        sweep = SweepResult("m", [0.1], [50.0], [1.2])
        payload = sweep.as_dict()
        assert payload == {
            "method": "m",
            "levels": [0.1],
            "hits": [50.0],
            "runtimes": [1.2],
        }
