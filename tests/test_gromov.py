"""Tests for GW solvers (repro.ot.gromov) and fused GW."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShapeError
from repro.graphs import erdos_renyi_graph, permute_graph
from repro.ot import (
    entropic_gromov_wasserstein,
    feature_cost_matrix,
    fused_gromov_wasserstein,
    gromov_wasserstein_distance,
    gw_constant_term,
    gw_gradient,
    gw_objective,
    proximal_gromov_wasserstein,
)


def ring_distance_matrix(n):
    idx = np.arange(n)
    d = np.abs(idx[:, None] - idx[None, :])
    return np.minimum(d, n - d).astype(np.float64)


class TestTensorAlgebra:
    def test_constant_term_shape(self):
        ds, dt = np.ones((3, 3)), np.ones((4, 4))
        mu, nu = np.full(3, 1 / 3), np.full(4, 0.25)
        assert gw_constant_term(ds, dt, mu, nu).shape == (3, 4)

    def test_objective_zero_for_identical_spaces(self):
        d = ring_distance_matrix(6)
        mu = np.full(6, 1 / 6)
        plan = np.eye(6) / 6
        assert gw_objective(d, d, plan, mu=mu, nu=mu) == pytest.approx(0.0, abs=1e-12)

    def test_objective_matches_bruteforce(self):
        rng = np.random.default_rng(0)
        n, m = 4, 5
        ds = rng.random((n, n))
        ds = (ds + ds.T) / 2
        dt = rng.random((m, m))
        dt = (dt + dt.T) / 2
        mu = np.full(n, 1 / n)
        nu = np.full(m, 1 / m)
        plan = np.outer(mu, nu)
        brute = sum(
            (ds[i, j] - dt[k, l]) ** 2 * plan[i, k] * plan[j, l]
            for i in range(n)
            for j in range(n)
            for k in range(m)
            for l in range(m)
        )
        fast = gw_objective(ds, dt, plan, mu=mu, nu=nu)
        assert fast == pytest.approx(brute, rel=1e-10)

    def test_gradient_matches_finite_differences(self):
        """∇ of the full tensor objective E(π) = Σ (Ds_ij − Dt_kl)² π_ik π_jl.

        Note: ``gw_objective`` fixes the marginal constant, so its naive
        FD differs from ``gw_gradient`` by a rank-one (row+column) term
        that the Sinkhorn projection absorbs; the brute-force E below is
        the quantity whose gradient the solver actually uses.
        """
        rng = np.random.default_rng(1)
        n, m = 3, 4
        ds = rng.random((n, n))
        ds = (ds + ds.T) / 2
        dt = rng.random((m, m))
        dt = (dt + dt.T) / 2
        mu = np.full(n, 1 / n)
        nu = np.full(m, 1 / m)
        plan = np.outer(mu, nu)

        def brute_e(p):
            return sum(
                (ds[i, j] - dt[k, l]) ** 2 * p[i, k] * p[j, l]
                for i in range(n)
                for j in range(n)
                for k in range(m)
                for l in range(m)
            )

        grad = gw_gradient(ds, dt, plan, mu=mu, nu=nu)
        eps = 1e-7
        for i in range(n):
            for k in range(m):
                bumped = plan.copy()
                bumped[i, k] += eps
                fd = (brute_e(bumped) - brute_e(plan)) / eps
                assert grad[i, k] == pytest.approx(fd, rel=1e-3, abs=1e-6)

    def test_gradient_requires_marginals_or_constant(self):
        d = np.eye(2)
        with pytest.raises(ValueError):
            gw_gradient(d, d, np.eye(2) / 2)


class TestProximalGW:
    def test_improves_over_independent_coupling(self):
        """GW between a random structure and its relabelling should beat
        the independent coupling.  (Rings are deliberately avoided:
        vertex-transitive structures make the uniform coupling a fixed
        point of the mirror/proximal iteration.)"""
        g = erdos_renyi_graph(12, 0.35, seed=10)
        h, _ = permute_graph(g, seed=11)
        d, d2 = g.dense_adjacency(), h.dense_adjacency()
        mu = np.full(12, 1 / 12)
        result = proximal_gromov_wasserstein(d, d2, step_size=0.02, max_iter=100)
        independent = gw_objective(d, d2, np.outer(mu, mu), mu=mu, nu=mu)
        assert result.distance < 0.5 * independent

    def test_plan_marginals(self):
        rng = np.random.default_rng(2)
        ds = rng.random((6, 6))
        ds = (ds + ds.T) / 2
        dt = rng.random((8, 8))
        dt = (dt + dt.T) / 2
        result = proximal_gromov_wasserstein(ds, dt, max_iter=30)
        np.testing.assert_allclose(result.plan.sum(axis=1), 1 / 6, atol=1e-8)
        np.testing.assert_allclose(result.plan.sum(axis=0), 1 / 8, atol=1e-4)

    def test_objective_decreases(self):
        g = erdos_renyi_graph(20, 0.3, seed=0)
        h, _ = permute_graph(g, seed=1)
        result = proximal_gromov_wasserstein(
            g.dense_adjacency(), h.dense_adjacency(), max_iter=50
        )
        values = np.asarray(result.history)
        assert values[-1] <= values[0] + 1e-9

    def test_aligns_permuted_graph(self):
        g = erdos_renyi_graph(20, 0.3, seed=3)
        h, perm = permute_graph(g, seed=4)
        result = proximal_gromov_wasserstein(
            g.dense_adjacency(), h.dense_adjacency(), max_iter=150
        )
        matches = np.argmax(result.plan, axis=1)
        assert (matches == perm).mean() > 0.8

    def test_invalid_step_size(self):
        d = np.eye(3)
        with pytest.raises(ValueError):
            proximal_gromov_wasserstein(d, d, step_size=0.0)

    def test_bad_init_shape(self):
        d = np.eye(3)
        with pytest.raises(ShapeError):
            proximal_gromov_wasserstein(d, d, init=np.ones((2, 2)))

    def test_custom_marginals(self):
        d = ring_distance_matrix(5)
        mu = np.array([0.4, 0.3, 0.1, 0.1, 0.1])
        result = proximal_gromov_wasserstein(d, d, mu=mu, max_iter=20)
        np.testing.assert_allclose(result.plan.sum(axis=1), mu, atol=1e-6)


class TestEntropicGW:
    def test_runs_and_satisfies_marginals(self):
        d = ring_distance_matrix(8)
        result = entropic_gromov_wasserstein(d, d, epsilon=0.1, max_iter=30)
        np.testing.assert_allclose(result.plan.sum(axis=1), 1 / 8, atol=1e-5)

    def test_invalid_epsilon(self):
        d = np.eye(3)
        with pytest.raises(ValueError):
            entropic_gromov_wasserstein(d, d, epsilon=0.0)


class TestDistanceWrapper:
    def test_identical_asymmetric_structure_near_zero(self):
        g = erdos_renyi_graph(10, 0.4, seed=12)
        d = g.dense_adjacency()
        independent = gw_objective(
            d, d, np.outer(np.full(10, 0.1), np.full(10, 0.1)),
            mu=np.full(10, 0.1), nu=np.full(10, 0.1),
        )
        assert gromov_wasserstein_distance(d, d, max_iter=150) < 0.5 * independent


class TestFusedGW:
    def test_feature_cost_sqeuclidean(self):
        xs = np.array([[0.0, 0.0], [1.0, 0.0]])
        xt = np.array([[0.0, 0.0], [0.0, 2.0]])
        cost = feature_cost_matrix(xs, xt)
        np.testing.assert_allclose(cost, [[0.0, 4.0], [1.0, 5.0]])

    def test_feature_cost_cosine_range(self):
        rng = np.random.default_rng(5)
        cost = feature_cost_matrix(
            rng.standard_normal((4, 3)), rng.standard_normal((5, 3)), metric="cosine"
        )
        assert np.all(cost >= -1e-9) and np.all(cost <= 2 + 1e-9)

    def test_feature_cost_dim_mismatch(self):
        with pytest.raises(ShapeError):
            feature_cost_matrix(np.ones((2, 3)), np.ones((2, 4)))

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            feature_cost_matrix(np.ones((2, 2)), np.ones((2, 2)), metric="hamming")

    def test_alpha_zero_ignores_structure(self):
        """With alpha=0 the solver reduces to entropic OT on features."""
        rng = np.random.default_rng(6)
        xs = rng.standard_normal((6, 4))
        perm = rng.permutation(6)
        xt = xs[perm]
        cost = feature_cost_matrix(xs, xt)
        result = fused_gromov_wasserstein(
            cost, np.zeros((6, 6)), np.zeros((6, 6)), alpha=0.0, max_iter=100
        )
        # the plan should put each source row's mass on its true copy:
        # source i sits at target row t where xt[t] == xs[i], i.e. perm[t] == i
        matches = np.argmax(result.plan, axis=1)
        truth = np.argsort(perm)
        assert (matches == truth).mean() >= 0.8

    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            fused_gromov_wasserstein(np.ones((2, 2)), np.eye(2), np.eye(2), alpha=1.5)

    def test_feature_cost_shape_check(self):
        with pytest.raises(ShapeError):
            fused_gromov_wasserstein(np.ones((3, 2)), np.eye(2), np.eye(2))

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.1, max_value=0.9))
    def test_marginals_any_alpha(self, alpha):
        rng = np.random.default_rng(7)
        cost = rng.random((4, 5))
        ds = rng.random((4, 4))
        ds = (ds + ds.T) / 2
        dt = rng.random((5, 5))
        dt = (dt + dt.T) / 2
        result = fused_gromov_wasserstein(cost, ds, dt, alpha=alpha, max_iter=20)
        np.testing.assert_allclose(result.plan.sum(axis=1), 0.25, atol=1e-8)


class TestOTFloat32:
    """Opt-in ``precision="float32"`` on the OT-layer solvers (PR 10)."""

    def random_problem(self, seed=0, n=14, m=12):
        rng = np.random.default_rng(seed)
        ds = rng.random((n, n))
        dt = rng.random((m, m))
        return 0.5 * (ds + ds.T), 0.5 * (dt + dt.T), rng.random((n, m))

    def test_proximal_gw_f32_tracks_the_f64_reference(self):
        ds, dt, _ = self.random_problem()
        f64 = proximal_gromov_wasserstein(ds, dt, max_iter=30)
        f32 = proximal_gromov_wasserstein(
            ds, dt, max_iter=30, precision="float32"
        )
        assert f32.plan.dtype == np.float64  # re-cast on return
        assert abs(f32.distance - f64.distance) < 1e-5
        relative = np.abs(f32.plan - f64.plan).sum() / np.abs(f64.plan).sum()
        assert relative < 1e-3

    def test_fused_gw_f32_tracks_the_f64_reference(self):
        ds, dt, cost = self.random_problem(seed=1)
        f64 = fused_gromov_wasserstein(cost, ds, dt, alpha=0.5, max_iter=30)
        f32 = fused_gromov_wasserstein(
            cost, ds, dt, alpha=0.5, max_iter=30, precision="float32"
        )
        assert f32.plan.dtype == np.float64
        assert abs(f32.distance - f64.distance) < 1e-5
        relative = np.abs(f32.plan - f64.plan).sum() / np.abs(f64.plan).sum()
        assert relative < 1e-3

    def test_f32_history_is_evaluated_in_float64(self):
        ds, dt, cost = self.random_problem(seed=2)
        result = fused_gromov_wasserstein(
            cost, ds, dt, alpha=0.5, max_iter=10, precision="float32"
        )
        assert all(isinstance(value, float) for value in result.history)

    def test_default_precision_path_is_unperturbed(self):
        """Two float64 calls produce identical bits — the f32 branch
        must not have touched the reference path."""
        ds, dt, cost = self.random_problem(seed=3)
        first = fused_gromov_wasserstein(cost, ds, dt, max_iter=15)
        second = fused_gromov_wasserstein(cost, ds, dt, max_iter=15)
        np.testing.assert_array_equal(first.plan, second.plan)
        prox_first = proximal_gromov_wasserstein(ds, dt, max_iter=15)
        prox_second = proximal_gromov_wasserstein(ds, dt, max_iter=15)
        np.testing.assert_array_equal(prox_first.plan, prox_second.plan)

    def test_unknown_precision_raises(self):
        ds, dt, cost = self.random_problem()
        with pytest.raises(ValueError, match="precision"):
            proximal_gromov_wasserstein(ds, dt, precision="float16")
        with pytest.raises(ValueError, match="precision"):
            fused_gromov_wasserstein(cost, ds, dt, precision="half")
