"""Tests for matching extraction (repro.ot.matching) and AlignmentResult."""

import numpy as np
import pytest

from repro.core import AlignmentResult
from repro.exceptions import ShapeError
from repro.ot import (
    argmax_matching,
    greedy_matching,
    hungarian_matching,
    top_k_candidates,
)


def diag_plan(n):
    plan = np.full((n, n), 0.01)
    np.fill_diagonal(plan, 1.0)
    return plan


class TestArgmax:
    def test_diagonal(self):
        np.testing.assert_array_equal(argmax_matching(diag_plan(4)), np.arange(4))

    def test_not_necessarily_injective(self):
        plan = np.array([[0.9, 0.1], [0.8, 0.2]])
        np.testing.assert_array_equal(argmax_matching(plan), [0, 0])

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            argmax_matching(np.empty((0, 0)))


class TestHungarian:
    def test_diagonal(self):
        np.testing.assert_array_equal(hungarian_matching(diag_plan(5)), np.arange(5))

    def test_one_to_one(self):
        rng = np.random.default_rng(0)
        matching = hungarian_matching(rng.random((6, 6)))
        assert len(set(matching.tolist())) == 6

    def test_beats_argmax_on_conflict(self):
        plan = np.array([[0.9, 0.8], [0.9, 0.1]])
        matching = hungarian_matching(plan)
        # hungarian resolves the conflict to maximise total score
        assert matching[0] == 1 and matching[1] == 0

    def test_rectangular(self):
        rng = np.random.default_rng(1)
        matching = hungarian_matching(rng.random((3, 5)))
        assert matching.shape == (3,)
        assert len(set(matching.tolist())) == 3

    def test_wide_rejected(self):
        with pytest.raises(ShapeError):
            hungarian_matching(np.ones((5, 3)))


class TestGreedy:
    def test_diagonal(self):
        np.testing.assert_array_equal(greedy_matching(diag_plan(4)), np.arange(4))

    def test_one_to_one(self):
        rng = np.random.default_rng(2)
        matching = greedy_matching(rng.random((7, 7)))
        matched = matching[matching >= 0]
        assert len(set(matched.tolist())) == len(matched)

    def test_unmatched_marked_minus_one(self):
        matching = greedy_matching(np.ones((4, 2)))
        assert (matching == -1).sum() == 2


class TestTopK:
    def test_best_first(self):
        plan = np.array([[0.1, 0.9, 0.5]])
        np.testing.assert_array_equal(top_k_candidates(plan, 2), [[1, 2]])

    def test_k_capped_at_columns(self):
        plan = np.random.default_rng(3).random((3, 2))
        assert top_k_candidates(plan, 10).shape == (3, 2)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            top_k_candidates(np.ones((2, 2)), 0)


class TestAlignmentResult:
    def test_matching_strategies(self):
        result = AlignmentResult(plan=diag_plan(4))
        for strategy in ("argmax", "greedy", "hungarian"):
            np.testing.assert_array_equal(result.matching(strategy), np.arange(4))

    def test_unknown_strategy(self):
        result = AlignmentResult(plan=diag_plan(2))
        with pytest.raises(ValueError):
            result.matching("magic")

    def test_top_k(self):
        result = AlignmentResult(plan=diag_plan(3))
        np.testing.assert_array_equal(result.top_k(1).ravel(), np.arange(3))
