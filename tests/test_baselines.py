"""Tests for the seven comparison baselines (repro.baselines)."""

import numpy as np
import pytest

from repro.baselines import (
    FusedGWAligner,
    GATAlignAligner,
    GCNAlignAligner,
    GWDAligner,
    KNNAligner,
    REGALAligner,
    WAlignAligner,
)
from repro.datasets import make_semi_synthetic_pair
from repro.eval import hits_at_k
from repro.exceptions import GraphError
from repro.graphs import erdos_renyi_graph, permute_features, stochastic_block_model
from repro.graphs.features import community_bag_of_words


def sbm_pair(seed=0, edge_noise=0.0, featperm=0.0):
    graph = stochastic_block_model([14, 14, 14], 0.3, 0.02, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 40, words_per_node=8, seed=seed + 1
    )
    graph = graph.with_features(feats)
    graph.node_labels = None
    transform = "permutation" if featperm else None
    return make_semi_synthetic_pair(
        graph,
        edge_noise=edge_noise,
        feature_transform=transform,
        feature_noise=featperm,
        seed=seed + 2,
    )


ALL_ALIGNERS = {
    "KNN": lambda: KNNAligner(),
    "GWD": lambda: GWDAligner(max_iter=60),
    "FusedGW": lambda: FusedGWAligner(max_iter=60),
    "REGAL": lambda: REGALAligner(seed=0),
    "GCNAlign": lambda: GCNAlignAligner(n_epochs=15, seed=0),
    "GATAlign": lambda: GATAlignAligner(n_epochs=8, seed=0),
    "WAlign": lambda: WAlignAligner(n_epochs=15, seed=0),
}


class TestCommonContract:
    @pytest.mark.parametrize("name", list(ALL_ALIGNERS))
    def test_plan_shape_and_metadata(self, name):
        pair = sbm_pair(seed=3)
        result = ALL_ALIGNERS[name]().fit(pair.source, pair.target)
        assert result.plan.shape == (pair.source.n_nodes, pair.target.n_nodes)
        assert np.all(np.isfinite(result.plan))
        assert result.runtime > 0
        assert result.method == name

    @pytest.mark.parametrize("name", ["KNN", "GWD", "FusedGW", "REGAL"])
    def test_decent_on_clean_pair(self, name):
        pair = sbm_pair(seed=4)
        result = ALL_ALIGNERS[name]().fit(pair.source, pair.target)
        floor = 5.0 if name == "REGAL" else 50.0
        assert hits_at_k(result.plan, pair.ground_truth, 1) > floor

    @pytest.mark.parametrize("name", ["GCNAlign", "GATAlign", "WAlign"])
    def test_gnn_methods_beat_chance(self, name):
        pair = sbm_pair(seed=5)
        result = ALL_ALIGNERS[name]().fit(pair.source, pair.target)
        chance = 100.0 / pair.target.n_nodes
        assert hits_at_k(result.plan, pair.ground_truth, 1) > 3 * chance


class TestKNN:
    def test_requires_features(self):
        g = erdos_renyi_graph(10, 0.3, seed=0)
        with pytest.raises(GraphError):
            KNNAligner().fit(g, g)

    def test_immune_to_structure_noise(self):
        clean = sbm_pair(seed=6)
        noisy = sbm_pair(seed=6, edge_noise=0.6)
        a = KNNAligner().fit(clean.source, clean.target)
        b = KNNAligner().fit(noisy.source, noisy.target)
        assert hits_at_k(a.plan, clean.ground_truth, 1) == pytest.approx(
            hits_at_k(b.plan, noisy.ground_truth, 1)
        )

    def test_hurt_by_feature_permutation(self):
        clean = sbm_pair(seed=7)
        permuted = sbm_pair(seed=7, featperm=0.9)
        a = KNNAligner().fit(clean.source, clean.target)
        b = KNNAligner().fit(permuted.source, permuted.target)
        assert hits_at_k(b.plan, permuted.ground_truth, 1) < hits_at_k(
            a.plan, clean.ground_truth, 1
        )

    def test_pads_mismatched_dims(self):
        pair = sbm_pair(seed=8)
        narrower = pair.target.with_features(pair.target.features[:, :20])
        result = KNNAligner().fit(pair.source, narrower)
        assert result.plan.shape == (pair.source.n_nodes, narrower.n_nodes)


class TestGWD:
    def test_feature_blind(self):
        """GWD ignores features entirely (immunity of Fig. 7)."""
        pair = sbm_pair(seed=9)
        permuted_target = permute_features(pair.target, 1.0, seed=10)
        a = GWDAligner(max_iter=40).fit(pair.source, pair.target)
        b = GWDAligner(max_iter=40).fit(pair.source, permuted_target)
        np.testing.assert_allclose(a.plan, b.plan, atol=1e-12)

    def test_reports_distance(self):
        pair = sbm_pair(seed=11)
        result = GWDAligner(max_iter=30).fit(pair.source, pair.target)
        assert "gw_distance" in result.extras


class TestFusedGW:
    def test_requires_features(self):
        g = erdos_renyi_graph(10, 0.3, seed=12)
        with pytest.raises(GraphError):
            FusedGWAligner().fit(g, g)

    def test_alpha_one_matches_gwd_plan_quality(self):
        pair = sbm_pair(seed=13)
        fgw = FusedGWAligner(alpha=1.0, max_iter=40).fit(pair.source, pair.target)
        gwd = GWDAligner(max_iter=40).fit(pair.source, pair.target)
        np.testing.assert_allclose(fgw.plan, gwd.plan, atol=1e-8)


class TestREGAL:
    def test_works_without_features(self):
        g = erdos_renyi_graph(30, 0.2, seed=14)
        from repro.graphs import permute_graph

        h, _ = permute_graph(g, seed=15)
        result = REGALAligner(use_features=False, seed=0).fit(g, h)
        assert result.plan.shape == (30, 30)

    def test_embedding_dim_bounded_by_landmarks(self):
        pair = sbm_pair(seed=16)
        result = REGALAligner(n_landmarks=16, seed=0).fit(pair.source, pair.target)
        assert result.extras["embedding_dim"] <= 16

    def test_deterministic(self):
        pair = sbm_pair(seed=17)
        a = REGALAligner(seed=3).fit(pair.source, pair.target)
        b = REGALAligner(seed=3).fit(pair.source, pair.target)
        np.testing.assert_array_equal(a.plan, b.plan)


class TestGNNAligners:
    def test_gcnalign_loss_decreases(self):
        pair = sbm_pair(seed=18)
        result = GCNAlignAligner(n_epochs=20, seed=0).fit(pair.source, pair.target)
        losses = result.extras["losses"]
        assert len(losses) > 2
        assert losses[-1] <= losses[0] + 1e-6

    def test_walign_records_losses(self):
        pair = sbm_pair(seed=19)
        result = WAlignAligner(n_epochs=10, seed=0).fit(pair.source, pair.target)
        assert len(result.extras["losses"]) == 10

    def test_gnn_methods_degrade_under_feature_permutation(self):
        """The cross-compare failure mode of Sec. III."""
        clean = sbm_pair(seed=20)
        permuted = sbm_pair(seed=20, featperm=1.0)
        a = GCNAlignAligner(n_epochs=15, seed=0).fit(clean.source, clean.target)
        b = GCNAlignAligner(n_epochs=15, seed=0).fit(
            permuted.source, permuted.target
        )
        assert hits_at_k(b.plan, permuted.ground_truth, 1) <= hits_at_k(
            a.plan, clean.ground_truth, 1
        )

    def test_requires_features(self):
        g = erdos_renyi_graph(10, 0.3, seed=21)
        for cls in (GCNAlignAligner, GATAlignAligner, WAlignAligner):
            with pytest.raises(GraphError):
                cls(n_epochs=2).fit(g, g)
