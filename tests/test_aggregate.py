"""Tests for multi-seed aggregation (repro.eval.aggregate)."""

import pytest

from repro.baselines import KNNAligner
from repro.datasets import load_cora, make_semi_synthetic_pair
from repro.eval import AggregateResult, format_aggregates, repeat_evaluation


def pair_factory(seed):
    return make_semi_synthetic_pair(
        load_cora(scale=0.02), edge_noise=0.2, seed=seed
    )


class TestRepeatEvaluation:
    def test_runs_requested_seeds(self):
        out = repeat_evaluation(
            pair_factory, KNNAligner, n_seeds=3, seed=0, ks=(1,)
        )
        assert len(out["hits@1"].values) == 3
        assert len(out["runtime"].values) == 3

    def test_statistics_consistent(self):
        agg = AggregateResult("hits@1", [50.0, 60.0, 70.0])
        assert agg.mean == pytest.approx(60.0)
        assert agg.low == 50.0
        assert agg.high == 70.0
        assert agg.std == pytest.approx(8.1649658, rel=1e-6)

    def test_deterministic_given_seed(self):
        a = repeat_evaluation(pair_factory, KNNAligner, n_seeds=2, seed=5, ks=(1,))
        b = repeat_evaluation(pair_factory, KNNAligner, n_seeds=2, seed=5, ks=(1,))
        assert a["hits@1"].values == b["hits@1"].values

    def test_invalid_n_seeds(self):
        with pytest.raises(ValueError):
            repeat_evaluation(pair_factory, KNNAligner, n_seeds=0)

    def test_format_aggregates(self):
        out = repeat_evaluation(pair_factory, KNNAligner, n_seeds=2, seed=1, ks=(1,))
        text = format_aggregates({"KNN": out})
        assert "KNN" in text and "hits@1" in text and "±" in text
