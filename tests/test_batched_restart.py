"""Bitwise contract of the ``batched-restart`` solver backend.

The batched backend runs the entire multi-start portfolio as one
stacked-tensor lockstep solve.  Per DESIGN.md's bitwise policy it must
reproduce the serial ``fused-dense`` portfolio **bit for bit** — not
approximately: chaotic GW iterations amplify one-ulp differences to
visible plan changes, so anything short of equality would make the
backend choice a semantic one.  These property tests sweep seeds, view
counts, annealing/portfolio regimes and early-stopping behaviour and
compare entire trajectories, not just final plans.
"""

import numpy as np
import pytest

from repro.core import SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.engine.pipeline import AlignmentEngine
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.ot.sinkhorn import (
    sinkhorn_log_kernel_fast,
    sinkhorn_log_kernel_fast_batched,
)


def bench_pair(seed=0, n_per_block=11):
    graph = stochastic_block_model([n_per_block] * 3, 0.35, 0.02, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 30, words_per_node=6, seed=seed + 1
    )
    graph = graph.with_features(feats)
    graph.node_labels = None
    return make_semi_synthetic_pair(graph, edge_noise=0.2, seed=seed + 2)


def solve_both(config, source, target, init_plan=None):
    serial = AlignmentEngine(config, backend="fused-dense", cache=None).align(
        source, target, init_plan=init_plan
    )
    batched = AlignmentEngine(
        config, backend="batched-restart", cache=None
    ).align(source, target, init_plan=init_plan)
    return serial, batched


def assert_identical(serial, batched):
    """Whole-trajectory equality: plans, β, histories, portfolio."""
    np.testing.assert_array_equal(serial.plan, batched.plan)
    np.testing.assert_array_equal(
        serial.extras["beta_source"], batched.extras["beta_source"]
    )
    np.testing.assert_array_equal(
        serial.extras["beta_target"], batched.extras["beta_target"]
    )
    assert serial.extras["objective"] == batched.extras["objective"]
    assert serial.extras["selected_start"] == batched.extras["selected_start"]
    assert (
        serial.extras["start_objectives"] == batched.extras["start_objectives"]
    )
    assert serial.extras["portfolio"] == batched.extras["portfolio"]
    hist_s = serial.extras["history"]
    hist_b = batched.extras["history"]
    assert hist_s.converged == hist_b.converged
    assert hist_s.objective_values == hist_b.objective_values
    assert hist_s.alpha_deltas == hist_b.alpha_deltas
    assert hist_s.plan_deltas == hist_b.plan_deltas


class TestPortfolioBitwise:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_across_seeds(self, seed):
        pair = bench_pair(seed=seed)
        cfg = SLOTAlignConfig(
            n_bases=2, structure_lr=0.1, max_outer_iter=60,
            sinkhorn_iter=40, track_history=True,
        )
        assert_identical(*solve_both(cfg, pair.source, pair.target))

    @pytest.mark.parametrize("n_bases", [1, 2, 3])
    def test_across_view_counts(self, n_bases):
        pair = bench_pair(seed=3)
        cfg = SLOTAlignConfig(
            n_bases=n_bases, structure_lr=0.1, max_outer_iter=40,
            sinkhorn_iter=30, track_history=True,
        )
        assert_identical(*solve_both(cfg, pair.source, pair.target))

    def test_early_stopped_restarts(self):
        """Restarts that converge before the budget leave the batch
        without perturbing the survivors (the bench regime: the frozen
        node-view run converges ~2/3 through)."""
        pair = bench_pair(seed=0)
        cfg = SLOTAlignConfig(
            n_bases=2, structure_lr=0.1, max_outer_iter=150,
            track_history=True,
        )
        serial, batched = solve_both(cfg, pair.source, pair.target)
        iterations = serial.extras["portfolio"]["iterations"]
        assert min(iterations.values()) < cfg.max_outer_iter, (
            "regression in the fixture: no restart early-stopped, so "
            "this test no longer exercises batch compression"
        )
        assert_identical(serial, batched)

    def test_pruned_portfolio_and_margins(self):
        pair = bench_pair(seed=1)
        cfg = SLOTAlignConfig(
            n_bases=2, structure_lr=0.1, max_outer_iter=80,
            anneal=False, portfolio_prune_iter=10, track_history=True,
        )
        serial, batched = solve_both(cfg, pair.source, pair.target)
        assert_identical(serial, batched)

    def test_no_pruning_full_budget(self):
        pair = bench_pair(seed=2)
        cfg = SLOTAlignConfig(
            n_bases=2, structure_lr=0.1, max_outer_iter=30,
            portfolio_prune_iter=0, track_history=True,
        )
        assert_identical(*solve_both(cfg, pair.source, pair.target))

    def test_tied_weights_and_centred_kernels(self):
        pair = bench_pair(seed=4)
        cfg = SLOTAlignConfig(
            n_bases=3, structure_lr=0.1, max_outer_iter=40,
            tie_weights=True, center_kernels=True, track_history=True,
        )
        assert_identical(*solve_both(cfg, pair.source, pair.target))

    def test_general_unfused_gradient_path(self):
        pair = bench_pair(seed=5)
        cfg = SLOTAlignConfig(
            n_bases=2, structure_lr=0.1, max_outer_iter=30,
            fused_contractions=False, track_history=True,
        )
        assert_identical(*solve_both(cfg, pair.source, pair.target))

    def test_informative_init_single_start(self):
        """The similarity init collapses the portfolio to one run."""
        pair = bench_pair(seed=6)
        cfg = SLOTAlignConfig(
            n_bases=2, structure_lr=0.1, max_outer_iter=40,
            use_feature_similarity_init=True, anneal=False,
            track_history=True,
        )
        serial, batched = solve_both(cfg, pair.source, pair.target)
        assert list(serial.extras["start_objectives"]) == ["uniform"]
        assert_identical(serial, batched)

    def test_rectangular_pair(self):
        """n != m: the stacked tensors are genuinely rectangular."""
        source = bench_pair(seed=7).source
        other = stochastic_block_model([9] * 3, 0.35, 0.02, seed=11)
        feats = community_bag_of_words(
            other.node_labels, 30, words_per_node=6, seed=12
        )
        target = other.with_features(feats)
        cfg = SLOTAlignConfig(
            n_bases=2, structure_lr=0.1, max_outer_iter=30,
            track_history=True,
        )
        assert_identical(*solve_both(cfg, source, target))

    def test_frozen_weight_restart_stays_frozen(self):
        pair = bench_pair(seed=8)
        cfg = SLOTAlignConfig(
            n_bases=2, structure_lr=0.1, max_outer_iter=30,
            learn_weights=False, multi_start=False, track_history=True,
        )
        serial, batched = solve_both(cfg, pair.source, pair.target)
        assert_identical(serial, batched)
        np.testing.assert_array_equal(batched.extras["beta_source"], 0.5)


class TestBatchedSinkhornKernel:
    """The (R, n, m) projection equals R serial projections exactly."""

    @pytest.mark.parametrize("tol", [0.0, 1e-9, 1e-3])
    def test_slices_match_serial(self, tol):
        rng = np.random.default_rng(0)
        kernels = rng.standard_normal((5, 33, 27)) * 3.0
        mu = np.full(33, 1.0 / 33)
        nu = np.full(27, 1.0 / 27)
        batched = sinkhorn_log_kernel_fast_batched(
            kernels, mu, nu, max_iter=60, tol=tol
        )
        for row in range(kernels.shape[0]):
            serial = sinkhorn_log_kernel_fast(
                kernels[row], mu, nu, max_iter=60, tol=tol
            )
            np.testing.assert_array_equal(batched[row].plan, serial.plan)
            assert batched[row].n_iterations == serial.n_iterations
            assert batched[row].marginal_error == serial.marginal_error
            assert batched[row].converged == serial.converged

    def test_heterogeneous_convergence_compresses_batch(self):
        """Sharp and flat kernels converge at different iterations;
        every slice still matches its serial run bit for bit."""
        rng = np.random.default_rng(1)
        sharp = rng.standard_normal((2, 20, 20)) * 12.0
        flat = rng.standard_normal((2, 20, 20)) * 0.1
        kernels = np.concatenate([sharp, flat])
        mu = np.full(20, 1.0 / 20)
        batched = sinkhorn_log_kernel_fast_batched(
            kernels, mu, mu, max_iter=400, tol=1e-9
        )
        iters = {r.n_iterations for r in batched}
        assert len(iters) > 1, "fixture no longer exercises mixed exits"
        for row in range(kernels.shape[0]):
            serial = sinkhorn_log_kernel_fast(
                kernels[row], mu, mu, max_iter=400, tol=1e-9
            )
            np.testing.assert_array_equal(batched[row].plan, serial.plan)
            assert batched[row].n_iterations == serial.n_iterations

    def test_empty_batch(self):
        mu = np.full(4, 0.25)
        assert sinkhorn_log_kernel_fast_batched(
            np.empty((0, 4, 4)), mu, mu
        ) == []
