"""Tests for restart-trajectory dedup (PR 9).

The ``fused-dense-dedup`` / ``batched-dedup`` backends drop restarts
whose couplings have converged onto an earlier restart's (relative
Frobenius distance within ``dedup_tol``) and redistribute the freed
iteration budget to the survivors.  Per the registry's
never-silently-replace rule they are **new names** next to
``fused-dense`` / ``batched-restart``; the pinned contract is that
with dedup off (``dedup_tol=0``) each one is bit-for-bit its base
backend.  Covers the :func:`dedup_schedule` / :func:`plan_distance`
units, the pinned :func:`_apply_dedup` merge criterion (start-order
keeper, freed-budget bookkeeping, converged runs freeing nothing),
the dedup-off bitwise parity, forced-merge bookkeeping end to end,
and serial-vs-batched dedup parity.
"""

from dataclasses import replace
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.engine import AlignmentEngine, available_backends
from repro.engine.restarts import _apply_dedup, dedup_schedule, plan_distance
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words

CFG = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=60, sinkhorn_iter=40,
    track_history=True,
)

#: (base backend, dedup twin) — dedup-off must be bitwise the base
PAIRS = (
    ("fused-dense", "fused-dense-dedup"),
    ("batched-restart", "batched-dedup"),
)


def bench_pair(seed=0, n_per_block=11):
    graph = stochastic_block_model([n_per_block] * 3, 0.35, 0.02, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 30, words_per_node=6, seed=seed + 1
    )
    graph = graph.with_features(feats)
    graph.node_labels = None
    return make_semi_synthetic_pair(graph, edge_noise=0.2, seed=seed + 2)


def solve(pair, backend, **backend_options):
    return AlignmentEngine(
        CFG, backend=backend, cache=None,
        backend_options=backend_options or None,
    ).align(pair.source, pair.target)


class TestRegistry:
    def test_dedup_backends_are_new_names_beside_the_bases(self):
        backends = available_backends()
        for base, dedup in PAIRS:
            assert base in backends, "base backend silently replaced"
            assert dedup in backends
            assert "dedup" in backends[dedup]


class TestPlanDistance:
    def test_identical_plans_are_at_distance_zero(self):
        plan = np.random.default_rng(0).random((6, 6))
        assert plan_distance(plan, plan) == 0.0
        assert plan_distance(np.zeros((3, 3)), np.zeros((3, 3))) == 0.0

    def test_relative_frobenius_value(self):
        a = np.eye(4)
        b = 2.0 * np.eye(4)
        # ‖a − b‖ = 2, scale = max(‖a‖, ‖b‖) = 4
        assert plan_distance(a, b) == 0.5

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a, b = rng.random((5, 7)), rng.random((5, 7))
        assert plan_distance(a, b) == plan_distance(b, a)


class TestDedupSchedule:
    def test_explicit_interval_excludes_the_budget(self):
        assert dedup_schedule(CFG, 20) == [20, 40]
        assert dedup_schedule(CFG, 30) == [30]  # 60 would free nothing

    def test_defaults_to_the_prune_interval(self):
        cfg = replace(CFG, portfolio_prune_iter=25, max_outer_iter=100)
        assert dedup_schedule(cfg) == [25, 50, 75]

    def test_falls_back_to_twenty_when_pruning_is_disabled(self):
        cfg = replace(CFG, portfolio_prune_iter=0, max_outer_iter=70)
        assert dedup_schedule(cfg) == [20, 40, 60]

    def test_degenerate_intervals_yield_no_checkpoints(self):
        assert dedup_schedule(CFG, 0) == []
        assert dedup_schedule(CFG, -5) == []
        assert dedup_schedule(CFG, CFG.max_outer_iter) == []


def stub_run(label, plan, iteration=20, converged=False, pruned=False):
    run = SimpleNamespace(
        label=label, plan=plan, iteration=iteration, pruned=pruned,
        deduped=False, merged_into=None,
        history=SimpleNamespace(converged=converged),
    )
    run.prune = lambda: setattr(run, "pruned", True)
    return run


class TestApplyDedup:
    """Unit contract of the pinned merge criterion."""

    def test_merges_into_the_earliest_run_in_start_order(self):
        plan = np.full((4, 4), 0.25)
        runs = [stub_run(label, plan.copy()) for label in ("a", "b", "c")]
        merges = _apply_dedup(runs, tol=1e-9, budget=60)
        assert [(m["kept"], m["dropped"]) for m in merges] == [
            ("a", "b"), ("a", "c")
        ]
        assert not runs[0].deduped and not runs[0].pruned
        for run in runs[1:]:
            assert run.deduped and run.pruned
            assert run.merged_into == "a"

    def test_tolerance_is_inclusive(self):
        a = np.full((4, 4), 0.25)
        b = a + 1e-6
        distance = plan_distance(a, b)
        runs = [stub_run("a", a), stub_run("b", b)]
        assert _apply_dedup(runs, tol=distance * 0.99, budget=60) == []
        assert not runs[1].deduped
        merges = _apply_dedup(runs, tol=distance, budget=60)
        assert len(merges) == 1
        assert merges[0]["distance"] == distance

    def test_freed_budget_bookkeeping(self):
        plan = np.full((4, 4), 0.25)
        runs = [
            stub_run("a", plan.copy(), iteration=20),
            stub_run("b", plan.copy(), iteration=20),
            stub_run("c", plan.copy(), iteration=20, converged=True),
            stub_run("d", plan.copy(), iteration=80),
        ]
        merges = _apply_dedup(runs, tol=1e-9, budget=60)
        freed = {m["dropped"]: m["freed"] for m in merges}
        assert freed == {
            "b": 40,  # budget 60 − iteration 20
            "c": 0,   # converged: its remaining budget was never owed
            "d": 0,   # already past the budget
        }

    def test_pruned_runs_are_not_candidates(self):
        plan = np.full((4, 4), 0.25)
        runs = [
            stub_run("a", plan.copy(), pruned=True),
            stub_run("b", plan.copy()),
            stub_run("c", plan.copy()),
        ]
        merges = _apply_dedup(runs, tol=1e-9, budget=60)
        # "a" is out of the pool entirely: "b" becomes the keeper
        assert [(m["kept"], m["dropped"]) for m in merges] == [("b", "c")]
        assert not runs[0].deduped


class TestDedupOffBitwise:
    """Satellite 3: ``dedup_tol=0`` IS the base backend, bit for bit."""

    @pytest.mark.parametrize("base,dedup", PAIRS)
    def test_tol_zero_matches_the_base_backend(self, base, dedup):
        pair = bench_pair(seed=0)
        ref = solve(pair, base)
        out = solve(pair, dedup, dedup_tol=0.0)
        np.testing.assert_array_equal(ref.plan, out.plan)
        np.testing.assert_array_equal(
            ref.extras["beta_source"], out.extras["beta_source"]
        )
        np.testing.assert_array_equal(
            ref.extras["beta_target"], out.extras["beta_target"]
        )
        assert ref.extras["objective"] == out.extras["objective"]
        assert ref.extras["selected_start"] == out.extras["selected_start"]
        assert ref.extras["start_objectives"] == out.extras["start_objectives"]
        assert (
            ref.extras["portfolio"]["iterations"]
            == out.extras["portfolio"]["iterations"]
        )
        info = out.extras["dedup"]
        assert info["merges"] == []
        assert info["freed_iterations"] == 0
        assert info["extension"] == 0

    def test_tol_zero_matches_under_pruning(self):
        pair = bench_pair(seed=1)
        cfg = replace(CFG, anneal=False, portfolio_prune_iter=10)
        ref = AlignmentEngine(cfg, backend="fused-dense", cache=None).align(
            pair.source, pair.target
        )
        out = AlignmentEngine(
            cfg, backend="fused-dense-dedup", cache=None,
            backend_options={"dedup_tol": 0.0},
        ).align(pair.source, pair.target)
        np.testing.assert_array_equal(ref.plan, out.plan)
        assert ref.extras["portfolio"] == {
            k: v for k, v in out.extras["portfolio"].items()
            if k in ref.extras["portfolio"]
        }


class TestForcedMerge:
    """An over-wide tolerance collapses the portfolio at the first
    checkpoint: every later start merges into the first, their budget
    is freed, and the lone survivor runs with the (capped) extension."""

    OPTIONS = {"dedup_tol": 10.0, "dedup_interval": 20}

    def expected_shape(self, info, n_runs):
        assert info["tolerance"] == 10.0
        assert info["checkpoints"] == [20, 40]
        merges = info["merges"]
        assert len(merges) == n_runs - 1
        keeper = merges[0]["kept"]
        for merge in merges:
            assert merge["kept"] == keeper
            assert merge["iteration"] == 20
            assert merge["freed"] == CFG.max_outer_iter - 20
        assert info["freed_iterations"] == (n_runs - 1) * 40
        # one survivor inherits everything, capped at one extra budget
        assert info["extension"] == min(
            info["freed_iterations"], CFG.max_outer_iter
        )
        return keeper

    def test_merge_bookkeeping(self):
        pair = bench_pair(seed=0)
        out = solve(pair, "fused-dense-dedup", **self.OPTIONS)
        iterations = out.extras["portfolio"]["iterations"]
        keeper = self.expected_shape(out.extras["dedup"], len(iterations))
        assert out.extras["selected_start"] == keeper
        # survivor ran into the extension; the merged runs stopped at
        # the checkpoint that dropped them
        assert iterations[keeper] > CFG.max_outer_iter
        for label, n_iter in iterations.items():
            if label != keeper:
                assert n_iter == 20

    def test_serial_and_batched_dedup_agree(self):
        pair = bench_pair(seed=0)
        serial = solve(pair, "fused-dense-dedup", **self.OPTIONS)
        batched = solve(pair, "batched-dedup", **self.OPTIONS)
        np.testing.assert_array_equal(serial.plan, batched.plan)
        assert serial.extras["objective"] == batched.extras["objective"]
        assert serial.extras["dedup"] == batched.extras["dedup"]
        assert (
            serial.extras["portfolio"]["iterations"]
            == batched.extras["portfolio"]["iterations"]
        )


class TestDedupTolerance:
    """The converging tolerance schedule (ROADMAP item 4 follow-up).

    The PR-9 fixed ``1e-5`` was a dead letter — same-basin restarts
    plateau near relative distance 1e-3 and never get closer — so the
    dedup checkpoints now compare against a geometric decay from
    ``dedup_tol_start`` (default :data:`DEDUP_TOL_START`) down to the
    ``dedup_tol`` floor at the outer budget.
    """

    def test_endpoints_interpolate_start_to_floor(self):
        from repro.engine.restarts import DEDUP_TOL_START, dedup_tolerance

        assert dedup_tolerance(0, 150, 1e-5) == DEDUP_TOL_START
        assert dedup_tolerance(150, 150, 1e-5) == pytest.approx(1e-5)
        midway = dedup_tolerance(75, 150, 1e-5)
        assert midway == pytest.approx((DEDUP_TOL_START * 1e-5) ** 0.5)

    def test_schedule_is_monotone_decreasing(self):
        from repro.engine.restarts import dedup_tolerance

        values = [dedup_tolerance(i, 100, 1e-5) for i in range(0, 101, 10)]
        assert values == sorted(values, reverse=True)

    def test_degenerate_floors_and_starts_are_constant(self):
        from repro.engine.restarts import dedup_tolerance

        # dedup off stays off at every checkpoint
        assert dedup_tolerance(20, 60, 0.0) == 0.0
        assert dedup_tolerance(20, 60, -1.0) == -1.0
        # an over-wide explicit floor (forced-merge tests) is constant
        assert dedup_tolerance(20, 60, 10.0) == 10.0
        assert dedup_tolerance(0, 60, 10.0) == 10.0
        # a degenerate budget clamps to the floor
        assert dedup_tolerance(5, 0, 1e-5) == pytest.approx(1e-5)

    def test_iterations_past_the_budget_clamp_to_the_floor(self):
        from repro.engine.restarts import dedup_tolerance

        assert dedup_tolerance(300, 150, 1e-5) == pytest.approx(1e-5)

    def test_extras_record_the_schedule(self):
        from repro.engine.restarts import DEDUP_TOL_START, dedup_tolerance

        pair = bench_pair(seed=0)
        out = solve(pair, "fused-dense-dedup")
        info = out.extras["dedup"]
        assert info["tolerance"] == 1e-5
        assert info["tolerance_start"] == DEDUP_TOL_START
        assert [i for i, _ in info["tolerance_schedule"]] == info["checkpoints"]
        for iteration, tol in info["tolerance_schedule"]:
            assert tol == dedup_tolerance(
                iteration, CFG.max_outer_iter, 1e-5, DEDUP_TOL_START
            )

    def test_wider_start_merges_where_the_default_does_not(self):
        """Same pair, same floor: only the opening tolerance differs,
        and it alone decides whether the clone restarts merge."""
        pair = bench_pair(seed=0)
        default = solve(pair, "fused-dense-dedup")
        widened = solve(
            pair, "fused-dense-dedup", dedup_tol_start=0.5
        )
        assert default.extras["dedup"]["merges"] == []
        merges = widened.extras["dedup"]["merges"]
        assert merges, "a 0.5 opening tolerance must merge the clones"
        assert widened.extras["dedup"]["freed_iterations"] > 0
        # keepers precede the dropped runs in start order
        labels = [run for run in default.extras["portfolio"]["iterations"]]
        for merge in merges:
            assert labels.index(merge["kept"]) < labels.index(merge["dropped"])

    def test_serial_and_batched_agree_on_the_widened_schedule(self):
        pair = bench_pair(seed=0)
        options = {"dedup_tol_start": 0.5}
        serial = solve(pair, "fused-dense-dedup", **options)
        batched = solve(pair, "batched-dedup", **options)
        np.testing.assert_array_equal(serial.plan, batched.plan)
        assert serial.extras["dedup"] == batched.extras["dedup"]
