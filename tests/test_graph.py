"""Tests for repro.graphs.graph (AttributedGraph)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError
from repro.graphs import AttributedGraph


def triangle(features=None):
    return AttributedGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)], features=features)


class TestConstruction:
    def test_from_edges_basic(self):
        g = triangle()
        assert g.n_nodes == 3
        assert g.n_edges == 3

    def test_duplicate_edges_collapsed(self):
        g = AttributedGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.n_edges == 1

    def test_self_loops_dropped_in_from_edges(self):
        g = AttributedGraph.from_edges(3, [(0, 0), (0, 1)])
        assert g.n_edges == 1

    def test_out_of_range_edge_raises(self):
        with pytest.raises(GraphError):
            AttributedGraph.from_edges(2, [(0, 5)])

    def test_asymmetric_adjacency_rejected(self):
        adj = np.zeros((2, 2))
        adj[0, 1] = 1.0
        with pytest.raises(GraphError):
            AttributedGraph(adjacency=adj)

    def test_self_loop_adjacency_rejected(self):
        adj = np.eye(2)
        with pytest.raises(GraphError):
            AttributedGraph(adjacency=adj)

    def test_rectangular_adjacency_rejected(self):
        with pytest.raises(GraphError):
            AttributedGraph(adjacency=np.ones((2, 3)))

    def test_feature_row_mismatch_rejected(self):
        with pytest.raises(GraphError):
            triangle(features=np.ones((2, 4)))

    def test_nan_features_rejected(self):
        feats = np.ones((3, 2))
        feats[0, 0] = np.nan
        with pytest.raises(GraphError):
            triangle(features=feats)

    def test_from_networkx(self):
        import networkx as nx

        nxg = nx.path_graph(4)
        g = AttributedGraph.from_networkx(nxg)
        assert g.n_nodes == 4
        assert g.n_edges == 3

    def test_empty_graph(self):
        g = AttributedGraph.from_edges(5, [])
        assert g.n_edges == 0
        assert np.all(g.degrees == 0)


class TestAccessors:
    def test_degrees(self):
        g = AttributedGraph.from_edges(3, [(0, 1), (0, 2)])
        np.testing.assert_array_equal(g.degrees, [2, 1, 1])

    def test_has_edge(self):
        g = triangle()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_edge_list_ordering(self):
        g = triangle()
        edges = g.edge_list()
        assert edges.shape == (3, 2)
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_n_features(self):
        assert triangle().n_features == 0
        assert triangle(features=np.ones((3, 7))).n_features == 7

    def test_dense_adjacency_symmetric(self):
        dense = triangle().dense_adjacency()
        np.testing.assert_array_equal(dense, dense.T)


class TestTransformations:
    def test_with_features_copies(self):
        g = triangle()
        g2 = g.with_features(np.ones((3, 2)))
        assert g2.n_features == 2
        assert g.features is None

    def test_subgraph_preserves_edges(self):
        g = triangle(features=np.arange(6).reshape(3, 2).astype(float))
        sub = g.subgraph([0, 2])
        assert sub.n_nodes == 2
        assert sub.n_edges == 1
        np.testing.assert_array_equal(sub.features[1], g.features[2])

    def test_subgraph_out_of_range(self):
        with pytest.raises(GraphError):
            triangle().subgraph([0, 9])

    def test_copy_independent(self):
        g = triangle(features=np.ones((3, 2)))
        g2 = g.copy()
        g2.features[0, 0] = 99.0
        assert g.features[0, 0] == 1.0

    def test_sparse_input_accepted(self):
        adj = sp.csr_array(triangle().dense_adjacency())
        g = AttributedGraph(adjacency=adj)
        assert g.n_edges == 3
