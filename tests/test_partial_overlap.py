"""Tests for the partial-overlap alignment workload (PR 8).

Covers the partial-pair construction protocol
(:class:`repro.datasets.PartialPairSpec` / ``make_partial_pair`` /
``inject_nodes``), the two partial solver backends, the classical
backends' refusal of partial inputs, anchor threading through the
engine, and — the pinned contract — **bitwise parity**: a
``partial-dummy`` solve at overlap 1.0 with no anchors IS the
``fused-dense`` reference run, plan for plan.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import SLOTAlignConfig
from repro.datasets import (
    PartialPairSpec,
    make_partial_pair,
    make_semi_synthetic_pair,
)
from repro.engine import (
    AlignmentEngine,
    available_backends,
    ensure_classical_problem,
    get_backend,
    partial_backends,
)
from repro.eval import run_partial_sweep
from repro.exceptions import ConfigError, DatasetError, GraphError
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words
from repro.graphs.perturbation import inject_nodes

FAST = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=25, sinkhorn_iter=20,
    track_history=False,
)
#: single-restart profile for the sweep smoke test (tier-1 stays fast)
TINY = replace(
    FAST, max_outer_iter=10, sinkhorn_iter=10,
    multi_start=False, single_start_view="node",
)


def base_graph(seed=0, n_per_block=10):
    graph = stochastic_block_model([n_per_block] * 3, 0.4, 0.02, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 30, words_per_node=6, seed=seed + 1
    )
    graph = graph.with_features(feats)
    graph.node_labels = None
    return graph


class TestPartialPairSpec:
    def test_defaults_are_the_classical_setting(self):
        spec = PartialPairSpec()
        assert spec.overlap == 1.0
        assert spec.anchor_fraction == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"overlap": 0.0},
            {"overlap": 1.5},
            {"overlap": -0.1},
            {"anchor_fraction": -0.1},
            {"anchor_fraction": 1.5},
            {"drop_balance": -0.1},
            {"drop_balance": 1.1},
            {"inject_target": -0.5},
        ],
    )
    def test_rejects_out_of_range_fields(self, kwargs):
        with pytest.raises(DatasetError):
            PartialPairSpec(**kwargs)

    def test_config_knobs_validated(self):
        with pytest.raises(ConfigError, match="partial_mass"):
            SLOTAlignConfig(partial_mass=0.0)
        with pytest.raises(ConfigError, match="partial_mass"):
            SLOTAlignConfig(partial_mass=1.5)
        with pytest.raises(ConfigError, match="partial_rho"):
            SLOTAlignConfig(partial_rho=0.0)
        with pytest.raises(ConfigError, match="partial_anchor_weight"):
            SLOTAlignConfig(partial_anchor_weight=-1.0)


class TestMakePartialPair:
    def test_full_overlap_is_the_bijective_pair(self):
        graph = base_graph()
        pair = make_partial_pair(graph, PartialPairSpec(overlap=1.0), seed=3)
        n = graph.n_nodes
        assert pair.source.n_nodes == n
        assert pair.target.n_nodes == n
        assert pair.ground_truth.shape == (n, 2)
        assert pair.source_matchable.all()
        assert pair.target_matchable.all()
        assert pair.anchors.shape == (0, 2)
        assert pair.overlap_fraction == 1.0

    def test_ground_truth_covers_exactly_the_matchable_nodes(self):
        graph = base_graph()
        pair = make_partial_pair(graph, PartialPairSpec(overlap=0.6), seed=3)
        gt = pair.ground_truth
        n_overlap = int(round(0.6 * graph.n_nodes))
        assert gt.shape[0] == n_overlap
        source_flag = np.zeros(pair.source.n_nodes, dtype=bool)
        source_flag[gt[:, 0]] = True
        np.testing.assert_array_equal(source_flag, pair.source_matchable)
        target_flag = np.zeros(pair.target.n_nodes, dtype=bool)
        target_flag[gt[:, 1]] = True
        np.testing.assert_array_equal(target_flag, pair.target_matchable)
        # the dropped nodes really are split between the two sides
        assert pair.source.n_nodes < graph.n_nodes
        assert pair.target.n_nodes < graph.n_nodes

    def test_ground_truth_maps_true_counterparts(self):
        """With no noise, GT pairs carry identical feature vectors —
        the permutation protocol copies ``Xt = Pᵀ Xs``."""
        graph = base_graph()
        pair = make_partial_pair(graph, PartialPairSpec(overlap=0.7), seed=5)
        np.testing.assert_array_equal(
            pair.source.features[pair.ground_truth[:, 0]],
            pair.target.features[pair.ground_truth[:, 1]],
        )

    def test_drop_balance_extremes(self):
        graph = base_graph()
        n = graph.n_nodes
        n_overlap = int(round(0.6 * n))
        source_heavy = make_partial_pair(
            graph, PartialPairSpec(overlap=0.6, drop_balance=1.0), seed=7
        )
        # every non-overlapping node survives in the source only
        assert source_heavy.source.n_nodes == n
        assert source_heavy.target.n_nodes == n_overlap
        target_heavy = make_partial_pair(
            graph, PartialPairSpec(overlap=0.6, drop_balance=0.0), seed=7
        )
        assert target_heavy.source.n_nodes == n_overlap
        assert target_heavy.target.n_nodes == n

    def test_anchor_sampling(self):
        graph = base_graph()
        pair = make_partial_pair(
            graph, PartialPairSpec(overlap=0.8, anchor_fraction=0.25), seed=9
        )
        expected = int(round(0.25 * pair.ground_truth.shape[0]))
        assert pair.anchors.shape == (expected, 2)
        gt_pairs = {tuple(row) for row in pair.ground_truth}
        for row in pair.anchors:
            assert tuple(row) in gt_pairs

    def test_same_seed_same_drops_across_anchor_fractions(self):
        """The sweep's isolation discipline: one seed per overlap level
        must reproduce identical node drops for every anchor fraction."""
        graph = base_graph()
        bare = make_partial_pair(
            graph, PartialPairSpec(overlap=0.6, anchor_fraction=0.0), seed=11
        )
        seeded = make_partial_pair(
            graph, PartialPairSpec(overlap=0.6, anchor_fraction=0.3), seed=11
        )
        np.testing.assert_array_equal(bare.ground_truth, seeded.ground_truth)
        np.testing.assert_array_equal(
            bare.source_matchable, seeded.source_matchable
        )
        assert seeded.anchors.shape[0] > 0

    def test_injected_impostors_are_unmatchable(self):
        graph = base_graph()
        pair = make_partial_pair(
            graph, PartialPairSpec(overlap=0.8, inject_target=0.2), seed=13
        )
        n_inject = int(round(0.2 * graph.n_nodes))
        assert pair.target.n_nodes == pair.target_matchable.shape[0]
        assert not pair.target_matchable[-n_inject:].any()
        # injection never touches the ground truth
        assert pair.ground_truth[:, 1].max() < pair.target.n_nodes - n_inject

    def test_anchor_outside_ground_truth_rejected(self):
        graph = base_graph()
        pair = make_partial_pair(graph, PartialPairSpec(overlap=0.8), seed=3)
        gt_pairs = {tuple(row) for row in pair.ground_truth}
        bogus = next(
            (i, j)
            for i in range(pair.source.n_nodes)
            for j in range(pair.target.n_nodes)
            if (i, j) not in gt_pairs
        )
        with pytest.raises(DatasetError, match="not a ground-truth pair"):
            make_partial_pair(
                graph, PartialPairSpec(overlap=0.8), seed=3
            ).__class__(
                source=pair.source,
                target=pair.target,
                ground_truth=pair.ground_truth,
                anchors=np.array([bogus]),
            )


class TestInjectNodes:
    def test_zero_injection_is_a_copy(self):
        graph = base_graph()
        out = inject_nodes(graph, 0, seed=0)
        assert out is not graph
        np.testing.assert_array_equal(
            out.dense_adjacency(), graph.dense_adjacency()
        )

    def test_negative_injection_rejected(self):
        with pytest.raises(GraphError):
            inject_nodes(base_graph(), -1)

    def test_impostors_appended_with_edges_and_features(self):
        graph = base_graph()
        out = inject_nodes(graph, 4, seed=0)
        assert out.n_nodes == graph.n_nodes + 4
        assert out.features.shape == (out.n_nodes, graph.n_features)
        # original block untouched
        np.testing.assert_array_equal(
            out.dense_adjacency()[: graph.n_nodes, : graph.n_nodes],
            graph.dense_adjacency(),
        )
        np.testing.assert_array_equal(
            out.features[: graph.n_nodes], graph.features
        )
        # every impostor is connected (degree target is at least 1)
        assert (out.degrees[graph.n_nodes:] >= 1).all()

    def test_impostor_features_bootstrap_the_marginals(self):
        """Each injected feature value is drawn from the existing values
        of its own column — impostors match marginal statistics."""
        graph = base_graph()
        out = inject_nodes(graph, 3, seed=1)
        for column in range(graph.n_features):
            existing = set(np.unique(graph.features[:, column]))
            injected = out.features[graph.n_nodes:, column]
            assert all(value in existing for value in injected)


class TestClassicalGuards:
    def test_partial_backends_registered(self):
        backends = available_backends()
        assert "partial-dummy" in backends
        assert "partial-unbalanced" in backends
        assert set(partial_backends()) == {"partial-dummy", "partial-unbalanced"}
        assert get_backend("partial-dummy").kind == "dense"

    @pytest.mark.parametrize("backend", ["fused-dense", "batched-restart"])
    def test_classical_backend_refuses_partial_mass(self, backend):
        pair = make_partial_pair(
            base_graph(), PartialPairSpec(overlap=0.8), seed=0
        )
        cfg = replace(FAST, partial_mass=0.8)
        engine = AlignmentEngine(cfg, backend=backend, cache=None)
        with pytest.raises(ConfigError, match="partial-dummy"):
            engine.align(pair.source, pair.target)

    @pytest.mark.parametrize("backend", ["fused-dense", "batched-restart"])
    def test_classical_backend_refuses_anchors(self, backend):
        pair = make_partial_pair(
            base_graph(), PartialPairSpec(overlap=0.8, anchor_fraction=0.3),
            seed=0,
        )
        engine = AlignmentEngine(FAST, backend=backend, cache=None)
        with pytest.raises(ConfigError, match="anchor"):
            engine.align(pair.source, pair.target, anchors=pair.anchors)

    def test_ensure_classical_problem_passes_clean_input(self):
        pair = make_semi_synthetic_pair(base_graph(), seed=0)
        problem = AlignmentEngine(FAST, cache=None).plan(
            pair.source, pair.target
        )
        ensure_classical_problem(problem, "fused-dense")  # no raise

    def test_anchor_indices_validated_at_plan_time(self):
        pair = make_semi_synthetic_pair(base_graph(), seed=0)
        engine = AlignmentEngine(FAST, cache=None)
        with pytest.raises(GraphError, match="anchor"):
            engine.plan(
                pair.source, pair.target,
                anchors=np.array([[0, pair.target.n_nodes + 5]]),
            )


class TestParity:
    """Satellite 1: overlap=1.0, zero anchors ⇒ bitwise fused-dense."""

    def test_partial_dummy_delegates_bitwise(self):
        graph = base_graph()
        pair = make_partial_pair(graph, PartialPairSpec(overlap=1.0), seed=2)
        reference = AlignmentEngine(FAST, cache=None).align(
            pair.source, pair.target
        )
        partial = AlignmentEngine(
            FAST, backend="partial-dummy", cache=None
        ).align(pair.source, pair.target)
        # bitwise, not allclose: the delegation must BE the reference
        np.testing.assert_array_equal(partial.plan, reference.plan)
        np.testing.assert_array_equal(
            partial.extras["beta_source"], reference.extras["beta_source"]
        )
        np.testing.assert_array_equal(
            partial.extras["beta_target"], reference.extras["beta_target"]
        )
        assert partial.extras["objective"] == reference.extras["objective"]
        assert partial.extras["backend"] == "partial-dummy"
        info = partial.extras["partial"]
        assert info["delegated"] is True
        assert info["mass"] == 1.0
        assert not info["source_unmatchable"].any()

    def test_parity_metrics_match(self):
        graph = base_graph()
        pair = make_partial_pair(graph, PartialPairSpec(overlap=1.0), seed=2)
        runs = {
            backend: AlignmentEngine(FAST, backend=backend, cache=None).run(
                pair.source, pair.target, pair.ground_truth, ks=(1, 5)
            )
            for backend in ("fused-dense", "partial-dummy")
        }
        assert runs["fused-dense"].metrics == runs["partial-dummy"].metrics


class TestPartialBackends:
    def partial_run(self, backend, overlap=0.6, anchor_fraction=0.0, seed=4):
        graph = base_graph()
        pair = make_partial_pair(
            graph,
            PartialPairSpec(overlap=overlap, anchor_fraction=anchor_fraction),
            seed=seed,
        )
        cfg = replace(TINY, partial_mass=pair.overlap_fraction)
        engine = AlignmentEngine(cfg, backend=backend, cache=None)
        anchors = pair.anchors if pair.anchors.size else None
        result = engine.align(pair.source, pair.target, anchors=anchors)
        return pair, result

    def test_dummy_transports_exactly_the_requested_mass(self):
        pair, result = self.partial_run("partial-dummy")
        assert result.plan.shape == (pair.source.n_nodes, pair.target.n_nodes)
        assert result.plan.sum() == pytest.approx(
            pair.overlap_fraction, rel=1e-12
        )
        assert np.all(result.plan >= 0)
        info = result.extras["partial"]
        assert info["mode"] == "dummy"
        assert info["delegated"] is False
        assert 0.0 < info["matched_mass"] <= 1.0 + 1e-9
        for side in ("source_unmatchable", "target_unmatchable"):
            assert np.all((info[side] >= 0.0) & (info[side] <= 1.0))

    def test_dummy_shed_scores_separate_unmatchable_nodes(self):
        pair, result = self.partial_run("partial-dummy")
        scores = result.extras["partial"]["source_unmatchable"]
        unmatchable = scores[~pair.source_matchable].mean()
        matchable = scores[pair.source_matchable].mean()
        assert unmatchable > matchable

    def test_unbalanced_plan_well_formed(self):
        pair, result = self.partial_run("partial-unbalanced")
        assert result.plan.shape == (pair.source.n_nodes, pair.target.n_nodes)
        assert np.all(np.isfinite(result.plan))
        assert np.all(result.plan >= 0)
        info = result.extras["partial"]
        assert info["mode"] == "unbalanced"
        assert info["rho"] == TINY.partial_rho
        assert 0.0 < info["matched_mass"] <= 1.0 + 1e-9
        for side in ("source_unmatchable", "target_unmatchable"):
            assert np.all((info[side] >= 0.0) & (info[side] <= 1.0))

    @pytest.mark.parametrize("backend", ["partial-dummy", "partial-unbalanced"])
    def test_anchor_prior_concentrates_anchor_cells(self, backend):
        """The +weight prior must visibly pull anchored cells upward
        relative to the unanchored run — anchors are consumed, not
        silently dropped."""
        bare_pair, bare = self.partial_run(backend, anchor_fraction=0.0)
        pair, seeded = self.partial_run(backend, anchor_fraction=0.4)
        np.testing.assert_array_equal(
            bare_pair.ground_truth, pair.ground_truth
        )
        rows, cols = pair.anchors[:, 0], pair.anchors[:, 1]
        assert seeded.plan[rows, cols].sum() > bare.plan[rows, cols].sum()
        assert seeded.extras["partial"]["n_anchors"] == pair.anchors.shape[0]


class TestPartialSweep:
    def test_sweep_points_report_the_full_contract(self):
        graph = base_graph(n_per_block=8)
        points = run_partial_sweep(
            graph, overlaps=(1.0, 0.6), anchor_fractions=(0.0,),
            config=TINY, seed=0, ks=(1, 5),
        )
        assert len(points) == 2
        by_overlap = {p["overlap"]: p for p in points}
        assert set(by_overlap) == {1.0, 0.6}
        for point in points:
            assert point["backend"] == "partial-dummy"
            assert {"hits@1", "hits@5", "mrr"} <= set(point)
            assert 0.0 < point["matched_mass"] <= 1.0 + 1e-9
            assert point["runtime"] >= 0.0
        assert by_overlap[1.0]["matchable_fraction"] == 1.0
        assert by_overlap[1.0]["detection"]["n_unmatchable"] == 0
        assert by_overlap[0.6]["detection"]["n_unmatchable"] > 0
        assert by_overlap[0.6]["matchable_fraction"] < 1.0
