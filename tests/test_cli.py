"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_align_defaults(self):
        args = build_parser().parse_args(["align", "cora"])
        assert args.method == "slotalign"
        assert args.scale == 0.05


class TestCommands:
    def test_datasets_lists_catalogue(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cora" in out and "douban" in out

    def test_stats_prints_summary(self, capsys):
        assert main(["stats", "cora", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "average_degree" in out

    def test_align_knn(self, capsys):
        code = main(
            [
                "align",
                "cora",
                "--method",
                "knn",
                "--scale",
                "0.02",
                "--edge-noise",
                "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hits@1" in out

    def test_align_slotalign_small(self, capsys):
        code = main(
            [
                "align",
                "cora",
                "--scale",
                "0.02",
                "--iters",
                "30",
                "--truncate-columns",
                "100",
            ]
        )
        assert code == 0
        assert "runtime" in capsys.readouterr().out

    def test_unknown_dataset_errors(self):
        from repro.exceptions import DatasetError

        with pytest.raises(DatasetError):
            main(["stats", "imdb"])


class TestEngineCommand:
    def test_list_backends(self, capsys):
        assert main(["engine", "--list-backends"]) == 0
        out = capsys.readouterr().out
        for name in ("fused-dense", "batched-restart", "sparse"):
            assert name in out

    def test_engine_requires_dataset_without_list(self):
        with pytest.raises(SystemExit, match="dataset"):
            main(["engine"])

    def test_engine_run_prints_stages_and_metrics(self, capsys):
        code = main(
            [
                "engine", "cora",
                "--scale", "0.02", "--iters", "20",
                "--backend", "batched-restart",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend  batched-restart" in out
        for stage in ("plan", "solve", "evaluate"):
            assert stage in out
        assert "hits@1" in out

    def test_engine_sparse_backend(self, capsys):
        code = main(
            [
                "engine", "cora",
                "--scale", "0.05", "--iters", "15",
                "--backend", "sparse", "--n-parts", "2",
                "--executor", "serial",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "parts    2" in out

    def test_unknown_backend_names_choices(self):
        with pytest.raises(SystemExit, match="valid backends.*fused-dense"):
            main(["engine", "cora", "--backend", "tpu"])

    def test_unknown_method_names_choices(self):
        with pytest.raises(SystemExit, match="valid methods.*slotalign"):
            main(["align", "cora", "--method", "does-not-exist"])

    def test_align_accepts_backend_flag(self, capsys):
        code = main(
            [
                "align", "cora",
                "--scale", "0.02", "--iters", "20",
                "--backend", "batched-restart",
            ]
        )
        assert code == 0
        assert "hits@1" in capsys.readouterr().out

    def test_sparse_backend_rejected_for_dense_methods(self):
        with pytest.raises(SystemExit, match="dense"):
            main(["align", "cora", "--backend", "sparse"])
        with pytest.raises(SystemExit, match="dense"):
            main(
                ["align", "cora", "--method", "partitioned",
                 "--backend", "sparse"]
            )

    def test_backend_rejected_for_non_engine_methods(self):
        with pytest.raises(SystemExit, match="only applies"):
            main(
                ["align", "cora", "--method", "knn",
                 "--backend", "batched-restart"]
            )


class TestDecoderCLI:
    def test_list_decoders(self, capsys):
        assert main(["engine", "--list-decoders"]) == 0
        out = capsys.readouterr().out
        for name in ("row-argmax", "mutual-argmax", "hungarian", "mea"):
            assert name in out

    def test_engine_decoder_flag_prints_the_decode_stage(self, capsys):
        code = main(
            [
                "engine", "cora",
                "--scale", "0.02", "--iters", "20",
                "--decoder", "mea",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "decoder  mea" in out
        assert "decode" in out
        assert "hits@1" in out

    def test_unknown_decoder_names_choices(self):
        with pytest.raises(SystemExit, match="valid decoders.*hungarian"):
            main(["engine", "cora", "--decoder", "viterbi"])
