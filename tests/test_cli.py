"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_align_defaults(self):
        args = build_parser().parse_args(["align", "cora"])
        assert args.method == "slotalign"
        assert args.scale == 0.05


class TestCommands:
    def test_datasets_lists_catalogue(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "cora" in out and "douban" in out

    def test_stats_prints_summary(self, capsys):
        assert main(["stats", "cora", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "average_degree" in out

    def test_align_knn(self, capsys):
        code = main(
            [
                "align",
                "cora",
                "--method",
                "knn",
                "--scale",
                "0.02",
                "--edge-noise",
                "0.2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hits@1" in out

    def test_align_slotalign_small(self, capsys):
        code = main(
            [
                "align",
                "cora",
                "--scale",
                "0.02",
                "--iters",
                "30",
                "--truncate-columns",
                "100",
            ]
        )
        assert code == 0
        assert "runtime" in capsys.readouterr().out

    def test_unknown_dataset_errors(self):
        from repro.exceptions import DatasetError

        with pytest.raises(DatasetError):
            main(["stats", "imdb"])
