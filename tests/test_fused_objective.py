"""Bitwise-equality regression tests for the fused contraction engine.

The refactored :class:`repro.core.objective.JointObjective` stacks the
bases, caches the combined matrices and memoises transport products.
None of that may change a single bit of the evaluated quantities: with
``fused=False`` every output must equal the pre-refactor serial
formulas exactly, on any BLAS.  The symmetric fused path
(``∂F/∂π = −4 D_s π D_t``) is allowed to differ from the general
formula by accumulated ulps only, and must itself be deterministic.
"""

import numpy as np
import pytest

from repro.core import JointObjective, build_structure_bases
from repro.core.views import combine_bases, stack_bases
from repro.exceptions import GraphError
from repro.graphs import erdos_renyi_graph


# ----------------------------------------------------------------------
# Pre-refactor serial formulas (transcribed verbatim from the original
# objective module; these are the bitwise anchors).
def reference_value(obj, plan, beta_s, beta_t):
    d_s = combine_bases(obj.source_bases, beta_s)
    d_t = combine_bases(obj.target_bases, beta_t)
    term_s = float(beta_s @ obj.gram_source @ beta_s) / obj.n**2
    term_t = float(beta_t @ obj.gram_target @ beta_t) / obj.m**2
    cross = -2.0 * float(np.sum((d_s @ plan @ d_t.T) * plan))
    return term_s + term_t + cross


def reference_plan_gradient(obj, plan, beta_s, beta_t):
    d_s = combine_bases(obj.source_bases, beta_s)
    d_t = combine_bases(obj.target_bases, beta_t)
    return -2.0 * (d_s @ plan @ d_t.T + d_s.T @ plan @ d_t)


def reference_alpha_gradient(obj, plan, beta_s, beta_t):
    d_s = combine_bases(obj.source_bases, beta_s)
    d_t = combine_bases(obj.target_bases, beta_t)
    transported_t = plan @ d_t @ plan.T
    transported_s = plan.T @ d_s @ plan
    grad_s = np.empty(obj.n_bases)
    grad_t = np.empty(obj.n_bases)
    for q in range(obj.n_bases):
        grad_s[q] = (
            2.0 / obj.n**2 * float(obj.gram_source[q] @ beta_s)
            - 2.0 * float(np.sum(obj.source_bases[q] * transported_t))
        )
        grad_t[q] = (
            2.0 / obj.m**2 * float(obj.gram_target[q] @ beta_t)
            - 2.0 * float(np.sum(obj.target_bases[q] * transported_s))
        )
    return np.concatenate([grad_s, grad_t])


def make_case(seed=0, n=23, m=19, k=3):
    rng = np.random.default_rng(seed)
    gs = erdos_renyi_graph(n, 0.3, seed=seed).with_features(rng.random((n, 6)))
    gt = erdos_renyi_graph(m, 0.3, seed=seed + 50).with_features(rng.random((m, 6)))
    source = build_structure_bases(gs, k)
    target = build_structure_bases(gt, k)
    beta_s = rng.dirichlet(np.ones(len(source)))
    beta_t = rng.dirichlet(np.ones(len(target)))
    plan = rng.random((n, m))
    plan /= plan.sum()
    return source, target, beta_s, beta_t, plan


class TestGeneralPathBitwise:
    """``fused=False`` reproduces the pre-refactor formulas exactly."""

    @pytest.mark.parametrize("seed,k", [(0, 1), (1, 2), (2, 3), (3, 4)])
    def test_all_quantities_bitwise(self, seed, k):
        source, target, beta_s, beta_t, plan = make_case(seed=seed, k=k)
        obj = JointObjective(source, target, fused=False)
        assert obj.value(plan, beta_s, beta_t) == reference_value(
            obj, plan, beta_s, beta_t
        )
        np.testing.assert_array_equal(
            obj.plan_gradient(plan, beta_s, beta_t),
            reference_plan_gradient(obj, plan, beta_s, beta_t),
        )
        np.testing.assert_array_equal(
            obj.alpha_gradient(plan, beta_s, beta_t),
            reference_alpha_gradient(obj, plan, beta_s, beta_t),
        )

    def test_caches_are_transparent(self):
        """Interleaved evaluation at several iterates (cache hits and
        evictions) never changes a bit of any output."""
        source, target, beta_s, beta_t, plan = make_case(seed=4, k=2)
        rng = np.random.default_rng(5)
        obj = JointObjective(source, target, fused=False)
        iterates = []
        for _ in range(4):
            bs = rng.dirichlet(np.ones(obj.n_bases))
            bt = rng.dirichlet(np.ones(obj.n_bases))
            p = rng.random(plan.shape)
            p /= p.sum()
            iterates.append((p, bs, bt))
        # repeated and interleaved passes over the same iterates
        for _ in range(3):
            for p, bs, bt in iterates:
                assert obj.value(p, bs, bt) == reference_value(obj, p, bs, bt)
                np.testing.assert_array_equal(
                    obj.plan_gradient(p, bs, bt),
                    reference_plan_gradient(obj, p, bs, bt),
                )
                np.testing.assert_array_equal(
                    obj.alpha_gradient(p, bs, bt),
                    reference_alpha_gradient(obj, p, bs, bt),
                )

    def test_combined_cache_returns_combine_bases_bits(self):
        source, target, beta_s, beta_t, _ = make_case(seed=6, k=3)
        obj = JointObjective(source, target)
        d_s, d_t = obj.combined(beta_s, beta_t)
        np.testing.assert_array_equal(d_s, combine_bases(source, beta_s))
        np.testing.assert_array_equal(d_t, combine_bases(target, beta_t))
        # second call is the cached object, not a recomputation
        assert obj.combined(beta_s, beta_t)[0] is d_s


class TestStacking:
    def test_stack_slices_bitwise(self):
        source, _, _, _, _ = make_case(seed=7, k=3)
        stack = stack_bases(source)
        assert stack.flags["C_CONTIGUOUS"]
        for q, basis in enumerate(source):
            np.testing.assert_array_equal(stack[q], basis)

    def test_stack_rejects_mismatched_shapes(self):
        with pytest.raises(GraphError):
            stack_bases([np.eye(3), np.eye(4)])

    def test_stack_rejects_empty(self):
        with pytest.raises(GraphError):
            stack_bases([])

    def test_stacked_contraction_matches_loop(self):
        """The batched (K, n, n) contraction used by alpha_gradient is
        bitwise-equal to the per-basis np.sum loop it replaced."""
        source, _, _, _, _ = make_case(seed=8, k=4)
        rng = np.random.default_rng(9)
        stack = stack_bases(source)
        transported = rng.standard_normal(source[0].shape)
        batched = (stack * transported).sum(axis=(1, 2))
        serial = np.array([float(np.sum(b * transported)) for b in source])
        np.testing.assert_array_equal(batched, serial)


class TestFusedSymmetricPath:
    def test_detects_symmetry(self):
        source, target, _, _, _ = make_case(seed=10, k=2)
        assert JointObjective(source, target).symmetric
        assert JointObjective(source, target, fused=True).fused

    def test_asymmetric_falls_back_to_general(self):
        rng = np.random.default_rng(11)
        a, b = rng.random((6, 6)), rng.random((7, 7))
        obj = JointObjective([a], [b], fused=True)
        assert not obj.fused
        plan = rng.random((6, 7))
        plan /= plan.sum()
        ones = np.ones(1)
        np.testing.assert_array_equal(
            obj.plan_gradient(plan, ones, ones),
            reference_plan_gradient(obj, plan, ones, ones),
        )

    def test_fused_matches_general_to_ulp(self):
        source, target, beta_s, beta_t, plan = make_case(seed=12, k=3)
        fused = JointObjective(source, target, fused=True)
        general = JointObjective(source, target, fused=False)
        assert fused.fused
        np.testing.assert_allclose(
            fused.plan_gradient(plan, beta_s, beta_t),
            general.plan_gradient(plan, beta_s, beta_t),
            rtol=1e-12,
            atol=1e-13,
        )
        assert fused.value(plan, beta_s, beta_t) == pytest.approx(
            general.value(plan, beta_s, beta_t), rel=1e-12
        )
        # the alpha path is shared: bitwise either way
        np.testing.assert_array_equal(
            fused.alpha_gradient(plan, beta_s, beta_t),
            general.alpha_gradient(plan, beta_s, beta_t),
        )

    def test_fused_is_deterministic(self):
        source, target, beta_s, beta_t, plan = make_case(seed=13, k=2)
        a = JointObjective(source, target, fused=True)
        b = JointObjective(source, target, fused=True)
        np.testing.assert_array_equal(
            a.plan_gradient(plan, beta_s, beta_t),
            b.plan_gradient(plan, beta_s, beta_t),
        )
