"""Cross-module property-based tests on core invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_structure_bases, combine_bases, normalize_basis
from repro.graphs import (
    erdos_renyi_graph,
    invert_permutation,
    permute_graph,
    perturb_edges,
)
from repro.ot import (
    gw_objective,
    project_simplex,
    sinkhorn_log_kernel_fast,
)


@st.composite
def seeded_graph(draw):
    seed = draw(st.integers(min_value=0, max_value=10**6))
    n = draw(st.integers(min_value=8, max_value=25))
    g = erdos_renyi_graph(n, 0.3, seed=seed)
    rng = np.random.default_rng(seed + 1)
    return g.with_features(rng.random((n, 6)))


class TestGraphInvariants:
    @settings(max_examples=20, deadline=None)
    @given(seeded_graph(), st.integers(min_value=0, max_value=10**6))
    def test_permutation_preserves_spectrum(self, graph, seed):
        permuted, _ = permute_graph(graph, seed=seed)
        a = np.sort(np.linalg.eigvalsh(graph.dense_adjacency()))
        b = np.sort(np.linalg.eigvalsh(permuted.dense_adjacency()))
        np.testing.assert_allclose(a, b, atol=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(seeded_graph(), st.integers(min_value=0, max_value=10**6))
    def test_double_permutation_roundtrip(self, graph, seed):
        permuted, perm = permute_graph(graph, seed=seed)
        back, _ = permute_graph(permuted, perm=invert_permutation(perm))
        np.testing.assert_array_equal(
            back.dense_adjacency(), graph.dense_adjacency()
        )
        np.testing.assert_allclose(back.features, graph.features)

    @settings(max_examples=15, deadline=None)
    @given(
        seeded_graph(),
        st.floats(min_value=0.0, max_value=0.9),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_perturbation_never_adds_self_loops(self, graph, ratio, seed):
        out = perturb_edges(graph, ratio, seed=seed)
        assert not out.adjacency.diagonal().any()


class TestViewInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seeded_graph(), st.integers(min_value=1, max_value=5))
    def test_bases_symmetric_and_normalised(self, graph, k):
        for basis in build_structure_bases(graph, k):
            np.testing.assert_allclose(basis, basis.T, atol=1e-9)
            norm = np.linalg.norm(basis)
            if norm > 1e-9:
                assert norm == 1.0 * basis.shape[0] or abs(
                    norm - basis.shape[0]
                ) < 1e-6

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_combination_linear_in_weights(self, k, seed):
        rng = np.random.default_rng(seed)
        bases = [rng.random((4, 4)) for _ in range(k)]
        w1 = rng.dirichlet(np.ones(k))
        w2 = rng.dirichlet(np.ones(k))
        lam = 0.3
        mixed = combine_bases(bases, lam * w1 + (1 - lam) * w2)
        expected = lam * combine_bases(bases, w1) + (1 - lam) * combine_bases(
            bases, w2
        )
        np.testing.assert_allclose(mixed, expected, atol=1e-10)


class TestOTInvariants:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_fast_sinkhorn_rows_exact(self, seed):
        rng = np.random.default_rng(seed)
        n, m = rng.integers(3, 12), rng.integers(3, 12)
        log_kernel = rng.standard_normal((n, m)) * 2
        mu = rng.dirichlet(np.ones(n))
        nu = rng.dirichlet(np.ones(m))
        plan = sinkhorn_log_kernel_fast(log_kernel, mu, nu, max_iter=200).plan
        np.testing.assert_allclose(plan.sum(axis=1), mu, atol=1e-10)
        assert np.all(plan >= 0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_gw_objective_symmetric_in_arguments(self, seed):
        """Swapping (Ds, Dt) and transposing pi leaves E unchanged."""
        rng = np.random.default_rng(seed)
        n, m = 5, 7
        ds = rng.random((n, n))
        ds = (ds + ds.T) / 2
        dt = rng.random((m, m))
        dt = (dt + dt.T) / 2
        mu, nu = np.full(n, 1 / n), np.full(m, 1 / m)
        plan = np.outer(mu, nu)
        forward = gw_objective(ds, dt, plan, mu=mu, nu=nu)
        backward = gw_objective(dt, ds, plan.T, mu=nu, nu=mu)
        np.testing.assert_allclose(forward, backward, atol=1e-10)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-20, max_value=20, allow_nan=False),
            min_size=1,
            max_size=12,
        ),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
    )
    def test_simplex_projection_shift_covariant_direction(self, values, shift):
        """Adding a constant to v does not change its projection."""
        v = np.array(values)
        a = project_simplex(v)
        b = project_simplex(v + shift)
        np.testing.assert_allclose(a, b, atol=1e-8)


class TestBasisNormalisation:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_idempotent(self, seed):
        rng = np.random.default_rng(seed)
        basis = rng.random((5, 5))
        once = normalize_basis(basis)
        twice = normalize_basis(once)
        np.testing.assert_allclose(once, twice, atol=1e-10)
