"""Tests for the SLOTAlign core algorithm (Algorithm 1, Prop. 4, Thm. 5)."""

import numpy as np
import pytest

from repro.core import (
    SLOTAlign,
    SLOTAlignConfig,
    slotalign,
)
from repro.core.slotalign import feature_similarity_plan
from repro.datasets import make_semi_synthetic_pair
from repro.eval import hits_at_k
from repro.exceptions import ConfigError, GraphError
from repro.graphs import (
    erdos_renyi_graph,
    permute_features,
    permute_graph,
    stochastic_block_model,
)
from repro.graphs.features import community_bag_of_words


def sbm_pair(seed=0, edge_noise=0.0, n_per_block=15):
    graph = stochastic_block_model([n_per_block] * 3, 0.3, 0.02, seed=seed)
    feats = community_bag_of_words(graph.node_labels, 40, words_per_node=8, seed=seed + 1)
    graph = graph.with_features(feats)
    graph.node_labels = None
    return make_semi_synthetic_pair(graph, edge_noise=edge_noise, seed=seed + 2)


FAST = dict(max_outer_iter=60, sinkhorn_iter=60, track_history=False)


class TestConfig:
    def test_defaults_valid(self):
        SLOTAlignConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_bases=0),
            dict(structure_lr=-1.0),
            dict(sinkhorn_lr=0.0),
            dict(max_outer_iter=0),
            dict(sinkhorn_iter=0),
            dict(alpha_tol=-1.0),
            dict(alpha_steps=0),
            dict(include_views=()),
            dict(include_views=("edge", "magic")),
            dict(eta_start=0.001, sinkhorn_lr=0.01),
            dict(anneal_fraction=0.0),
            dict(sinkhorn_tol=-1e-9),
            dict(portfolio_prune_iter=-1),
            dict(portfolio_prune_margin=-0.1),
            dict(portfolio_refine_margin=-0.1),
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SLOTAlignConfig(**kwargs)


class TestAlignmentQuality:
    def test_perfect_on_clean_pair(self):
        pair = sbm_pair(seed=1)
        result = SLOTAlign(SLOTAlignConfig(n_bases=2, structure_lr=0.1, **FAST)).fit(
            pair.source, pair.target
        )
        assert hits_at_k(result.plan, pair.ground_truth, 1) > 90.0

    def test_robust_to_moderate_edge_noise(self):
        pair = sbm_pair(seed=2, edge_noise=0.2)
        result = SLOTAlign(SLOTAlignConfig(n_bases=2, structure_lr=0.1, **FAST)).fit(
            pair.source, pair.target
        )
        assert hits_at_k(result.plan, pair.ground_truth, 1) > 60.0

    def test_plan_is_valid_coupling(self):
        pair = sbm_pair(seed=3)
        result = slotalign(pair.source, pair.target, SLOTAlignConfig(n_bases=2, **FAST))
        n, m = pair.source.n_nodes, pair.target.n_nodes
        assert result.plan.shape == (n, m)
        assert result.plan.min() >= 0
        # rows are exact (the scaling closes on a u-update); columns are
        # satisfied to Sinkhorn tolerance, which the sharp proximal
        # kernels limit to ~1e-4 at this iteration budget
        np.testing.assert_allclose(result.plan.sum(axis=1), 1 / n, atol=1e-8)
        np.testing.assert_allclose(result.plan.sum(axis=0), 1 / m, atol=2e-3)

    def test_rectangular_pair(self):
        """Source and target of different sizes align without error."""
        rng = np.random.default_rng(4)
        gs = erdos_renyi_graph(20, 0.3, seed=4).with_features(rng.random((20, 6)))
        gt = erdos_renyi_graph(25, 0.3, seed=5).with_features(rng.random((25, 6)))
        result = SLOTAlign(SLOTAlignConfig(n_bases=2, **FAST)).fit(gs, gt)
        assert result.plan.shape == (20, 25)


class TestProposition4:
    def test_invariant_to_full_feature_permutation(self):
        """SLOTAlign(Gs, Gt) == SLOTAlign(Gs, P(Gt)) exactly."""
        pair = sbm_pair(seed=6, edge_noise=0.15)
        cfg = SLOTAlignConfig(n_bases=2, structure_lr=0.1, **FAST)
        base = SLOTAlign(cfg).fit(pair.source, pair.target)
        permuted_target = permute_features(pair.target, 1.0, seed=7)
        after = SLOTAlign(cfg).fit(pair.source, permuted_target)
        np.testing.assert_allclose(base.plan, after.plan, atol=1e-10)

    def test_invariant_on_source_side_too(self):
        pair = sbm_pair(seed=8)
        cfg = SLOTAlignConfig(n_bases=3, structure_lr=0.1, **FAST)
        base = SLOTAlign(cfg).fit(pair.source, pair.target)
        permuted_source = permute_features(pair.source, 1.0, seed=9)
        after = SLOTAlign(cfg).fit(permuted_source, pair.target)
        np.testing.assert_allclose(base.plan, after.plan, atol=1e-10)


class TestTheorem5:
    def test_objective_monotonically_decreases(self):
        """Sufficient decrease at fixed eta (annealing disabled)."""
        pair = sbm_pair(seed=10, edge_noise=0.1)
        cfg = SLOTAlignConfig(
            n_bases=2,
            structure_lr=0.05,
            max_outer_iter=40,
            track_history=True,
            anneal=False,
            multi_start=False,
        )
        aligner = SLOTAlign(cfg)
        aligner.fit(pair.source, pair.target)
        assert aligner.history.is_monotone_decreasing(slack=1e-6)

    def test_iterate_movement_square_summable_in_practice(self):
        pair = sbm_pair(seed=11)
        cfg = SLOTAlignConfig(
            n_bases=2,
            structure_lr=0.05,
            max_outer_iter=60,
            track_history=True,
            anneal=False,
            multi_start=False,
        )
        aligner = SLOTAlign(cfg)
        aligner.fit(pair.source, pair.target)
        deltas = np.asarray(aligner.history.plan_deltas)
        # the tail movement must be much smaller than the head movement
        assert deltas[-10:].sum() < 0.2 * deltas[:10].sum() + 1e-12

    def test_converged_flag_on_long_run(self):
        pair = sbm_pair(seed=12)
        cfg = SLOTAlignConfig(
            n_bases=2,
            structure_lr=0.05,
            max_outer_iter=500,
            sinkhorn_iter=50,
            anneal=False,
            multi_start=False,
            alpha_tol=1e-4,
            plan_tol=1e-4,
            track_history=False,
        )
        aligner = SLOTAlign(cfg)
        aligner.fit(pair.source, pair.target)
        assert aligner.history.converged


class TestMechanics:
    def test_beta_weights_on_simplex(self):
        pair = sbm_pair(seed=13)
        result = SLOTAlign(SLOTAlignConfig(n_bases=3, **FAST)).fit(
            pair.source, pair.target
        )
        for beta in (result.extras["beta_source"], result.extras["beta_target"]):
            assert beta.min() >= -1e-12
            assert beta.sum() == pytest.approx(1.0)

    def test_multi_start_portfolio_recorded(self):
        pair = sbm_pair(seed=14)
        result = SLOTAlign(SLOTAlignConfig(n_bases=2, **FAST)).fit(
            pair.source, pair.target
        )
        objectives = result.extras["start_objectives"]
        assert set(objectives) == {"uniform", "edge", "node", "node-frozen"}
        pruned = set(result.extras["portfolio"]["pruned"])
        survivors = {
            label: value
            for label, value in objectives.items()
            if label not in pruned
        }
        assert survivors, "pruning must never remove every restart"
        assert result.extras["selected_start"] in survivors
        assert result.extras["objective"] == pytest.approx(min(survivors.values()))

    def test_portfolio_pruning_preserves_winner(self):
        """Successive halving must return the same plan as the full
        portfolio whenever the eventual winner survives pruning."""
        pair = sbm_pair(seed=24, edge_noise=0.1)
        full_cfg = SLOTAlignConfig(n_bases=2, portfolio_prune_iter=0, **FAST)
        pruned_cfg = SLOTAlignConfig(n_bases=2, **FAST)
        full = SLOTAlign(full_cfg).fit(pair.source, pair.target)
        halved = SLOTAlign(pruned_cfg).fit(pair.source, pair.target)
        assert halved.extras["selected_start"] == full.extras["selected_start"]
        # the survivor followed its exact unpruned iterate path
        np.testing.assert_array_equal(halved.plan, full.plan)

    def test_portfolio_iterations_reported(self):
        pair = sbm_pair(seed=25)
        result = SLOTAlign(SLOTAlignConfig(n_bases=2, **FAST)).fit(
            pair.source, pair.target
        )
        portfolio = result.extras["portfolio"]
        iterations = portfolio["iterations"]
        assert set(iterations) == set(result.extras["start_objectives"])
        for label, stopped_at in portfolio["pruned"].items():
            assert stopped_at == iterations[label]
            assert stopped_at < FAST["max_outer_iter"]

    def test_phase_timings_recorded(self):
        pair = sbm_pair(seed=26)
        result = SLOTAlign(SLOTAlignConfig(n_bases=2, **FAST)).fit(
            pair.source, pair.target
        )
        timings = result.extras["phase_timings"]
        for key in ("basis_build", "alpha_update", "pi_update", "per_restart"):
            assert key in timings
        assert timings["pi_update"] > 0
        assert all(v >= 0 for v in timings["per_restart"].values())

    def test_single_start_when_disabled(self):
        pair = sbm_pair(seed=15)
        cfg = SLOTAlignConfig(n_bases=2, multi_start=False, **FAST)
        result = SLOTAlign(cfg).fit(pair.source, pair.target)
        assert list(result.extras["start_objectives"]) == ["uniform"]

    def test_single_start_view_vertex(self):
        """A committed single start begins at the requested view's
        simplex vertex and matches the portfolio's run of that label."""
        pair = sbm_pair(seed=31)
        node_cfg = SLOTAlignConfig(
            n_bases=2, multi_start=False, single_start_view="node", **FAST
        )
        result = SLOTAlign(node_cfg).fit(pair.source, pair.target)
        assert list(result.extras["start_objectives"]) == ["node"]
        full_cfg = SLOTAlignConfig(
            n_bases=2, portfolio_prune_iter=0, **FAST
        )
        full = SLOTAlign(full_cfg).fit(pair.source, pair.target)
        assert result.extras["objective"] == pytest.approx(
            full.extras["start_objectives"]["node"]
        )

    def test_single_start_view_requires_included_view(self):
        with pytest.raises(ConfigError):
            SLOTAlignConfig(
                include_views=("edge",), single_start_view="node"
            )
        with pytest.raises(ConfigError):
            SLOTAlignConfig(single_start_view="subgraph")
        # the node view only materialises when n_bases leaves room for
        # it after the edge view
        with pytest.raises(ConfigError):
            SLOTAlignConfig(n_bases=1, single_start_view="node")
        SLOTAlignConfig(
            n_bases=1, include_views=("node", "subgraph"),
            single_start_view="node", multi_start=False,
        )

    def test_fixed_weights_stay_uniform(self):
        pair = sbm_pair(seed=16)
        cfg = SLOTAlignConfig(n_bases=2, learn_weights=False, multi_start=False, **FAST)
        result = SLOTAlign(cfg).fit(pair.source, pair.target)
        np.testing.assert_allclose(result.extras["beta_source"], 0.5)

    def test_custom_init_plan(self):
        pair = sbm_pair(seed=17)
        n, m = pair.source.n_nodes, pair.target.n_nodes
        init = np.full((n, m), 1.0 / (n * m))
        result = SLOTAlign(SLOTAlignConfig(n_bases=2, **FAST)).fit(
            pair.source, pair.target, init_plan=init
        )
        assert result.plan.shape == (n, m)

    def test_bad_init_plan_shape(self):
        pair = sbm_pair(seed=18)
        with pytest.raises(GraphError):
            SLOTAlign(SLOTAlignConfig(n_bases=2, **FAST)).fit(
                pair.source, pair.target, init_plan=np.ones((2, 2))
            )

    def test_negative_init_plan_rejected(self):
        pair = sbm_pair(seed=19)
        n, m = pair.source.n_nodes, pair.target.n_nodes
        bad = np.full((n, m), -1.0)
        with pytest.raises(GraphError):
            SLOTAlign(SLOTAlignConfig(n_bases=2, **FAST)).fit(
                pair.source, pair.target, init_plan=bad
            )

    def test_feature_similarity_init_dim_mismatch_keeps_multi_start(self):
        """When feature spaces are incomparable the similarity init
        degenerates to the uniform coupling; the informative flag must
        stay False so the restart portfolio is not silently disabled."""
        rng = np.random.default_rng(27)
        gs = erdos_renyi_graph(16, 0.3, seed=27).with_features(rng.random((16, 5)))
        gt = erdos_renyi_graph(16, 0.3, seed=28).with_features(rng.random((16, 9)))
        cfg = SLOTAlignConfig(
            n_bases=2, use_feature_similarity_init=True, **FAST
        )
        result = SLOTAlign(cfg).fit(gs, gt)
        assert set(result.extras["start_objectives"]) == {
            "uniform", "edge", "node", "node-frozen",
        }

    def test_feature_similarity_init_matching_dims_single_start(self):
        rng = np.random.default_rng(29)
        gs = erdos_renyi_graph(16, 0.3, seed=29).with_features(rng.random((16, 5)))
        gt = erdos_renyi_graph(16, 0.3, seed=30).with_features(rng.random((16, 5)))
        cfg = SLOTAlignConfig(
            n_bases=2, use_feature_similarity_init=True, **FAST
        )
        result = SLOTAlign(cfg).fit(gs, gt)
        assert list(result.extras["start_objectives"]) == ["uniform"]

    def test_feature_similarity_init_requires_features(self):
        gs = erdos_renyi_graph(10, 0.3, seed=20)
        gt = erdos_renyi_graph(10, 0.3, seed=21)
        cfg = SLOTAlignConfig(
            n_bases=1, include_views=("edge",), use_feature_similarity_init=True, **FAST
        )
        with pytest.raises(GraphError):
            SLOTAlign(cfg).fit(gs, gt)

    def test_runtime_recorded(self):
        pair = sbm_pair(seed=22)
        result = SLOTAlign(SLOTAlignConfig(n_bases=2, **FAST)).fit(
            pair.source, pair.target
        )
        assert result.runtime > 0
        assert result.method == "SLOTAlign"


class TestFeatureSimilarityPlan:
    def test_valid_coupling(self):
        rng = np.random.default_rng(23)
        xs, xt = rng.random((8, 5)), rng.random((10, 5))
        mu, nu = np.full(8, 1 / 8), np.full(10, 0.1)
        plan = feature_similarity_plan(xs, xt, mu, nu)
        np.testing.assert_allclose(plan.sum(axis=1), mu, atol=1e-6)
        np.testing.assert_allclose(plan.sum(axis=0), nu, atol=1e-6)

    def test_identical_features_peak_on_matches(self):
        rng = np.random.default_rng(24)
        xs = rng.standard_normal((12, 6))
        mu = np.full(12, 1 / 12)
        plan = feature_similarity_plan(xs, xs, mu, mu)
        assert (np.argmax(plan, axis=1) == np.arange(12)).mean() > 0.9

    def test_dim_mismatch_falls_back_to_uniform(self):
        mu, nu = np.full(4, 0.25), np.full(5, 0.2)
        plan = feature_similarity_plan(
            np.ones((4, 3)), np.ones((5, 7)), mu, nu
        )
        np.testing.assert_allclose(plan, np.outer(mu, nu))
