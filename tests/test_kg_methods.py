"""Tests for the KG-alignment baselines (repro.baselines.kg_methods)."""

import numpy as np
import pytest

from repro.baselines import EVAAligner, LIMEAligner, MultiKEAligner, SelfKGAligner
from repro.datasets import load_dbp15k
from repro.eval import hits_at_k
from repro.exceptions import GraphError
from repro.graphs import erdos_renyi_graph


@pytest.fixture(scope="module")
def kg_pair():
    return load_dbp15k("fr_en", scale=0.012, seed=7)


class TestMultiKE:
    def test_plan_shape(self, kg_pair):
        result = MultiKEAligner().fit(kg_pair.source, kg_pair.target)
        assert result.plan.shape == (
            kg_pair.source.n_nodes,
            kg_pair.target.n_nodes,
        )

    def test_beats_chance_on_high_agreement_subset(self, kg_pair):
        result = MultiKEAligner().fit(kg_pair.source, kg_pair.target)
        chance = 100.0 / kg_pair.target.n_nodes
        assert hits_at_k(result.plan, kg_pair.ground_truth, 1) > 5 * chance

    def test_requires_features(self):
        g = erdos_renyi_graph(10, 0.3, seed=0)
        with pytest.raises(GraphError):
            MultiKEAligner().fit(g, g)

    def test_views_recorded(self, kg_pair):
        result = MultiKEAligner(view_hops=(0, 1)).fit(kg_pair.source, kg_pair.target)
        assert result.extras["views"] == (0, 1)


class TestEVA:
    def test_plan_shape(self, kg_pair):
        result = EVAAligner().fit(kg_pair.source, kg_pair.target)
        assert result.plan.shape[0] == kg_pair.source.n_nodes

    def test_pivot_fraction_validated(self):
        with pytest.raises(ValueError):
            EVAAligner(pivot_fraction=0.0)

    def test_pivot_dim_recorded(self, kg_pair):
        result = EVAAligner(pivot_fraction=0.25).fit(kg_pair.source, kg_pair.target)
        assert result.extras["pivot_dim"] == int(
            0.25 * max(kg_pair.source.n_features, kg_pair.target.n_features)
        )


class TestSelfKG:
    def test_trains_and_aligns(self, kg_pair):
        result = SelfKGAligner(n_epochs=8, seed=0).fit(kg_pair.source, kg_pair.target)
        assert len(result.extras["losses"]) == 8
        chance = 100.0 / kg_pair.target.n_nodes
        assert hits_at_k(result.plan, kg_pair.ground_truth, 1) > chance


class TestLIME:
    def test_supervised_requires_seeds(self, kg_pair):
        with pytest.raises(GraphError):
            LIMEAligner().fit(kg_pair.source, kg_pair.target)

    def test_seeds_help(self, kg_pair):
        gt = kg_pair.ground_truth
        seeds = gt[: max(2, len(gt) // 3)]
        result = (
            LIMEAligner().set_seeds(seeds).fit(kg_pair.source, kg_pair.target)
        )
        chance = 100.0 / kg_pair.target.n_nodes
        assert hits_at_k(result.plan, gt, 1) > 5 * chance

    def test_bad_seed_shape(self):
        with pytest.raises(GraphError):
            LIMEAligner().set_seeds(np.array([1, 2, 3]))

    def test_reciprocal_flag(self, kg_pair):
        gt = kg_pair.ground_truth
        seeds = gt[:10]
        a = LIMEAligner(reciprocal=False).set_seeds(seeds).fit(
            kg_pair.source, kg_pair.target
        )
        b = LIMEAligner(reciprocal=True).set_seeds(seeds).fit(
            kg_pair.source, kg_pair.target
        )
        assert not np.allclose(a.plan, b.plan)
