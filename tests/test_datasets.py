"""Tests for the dataset stand-ins (repro.datasets)."""

import numpy as np
import pytest

from repro.datasets import (
    AlignmentPair,
    FEATURE_TRANSFORMS,
    KnowledgeGraph,
    available_datasets,
    load_acm_dblp,
    load_citeseer,
    load_cora,
    load_dbp15k,
    load_douban,
    load_facebook,
    load_graph_dataset,
    load_pair_dataset,
    load_ppi,
    make_semi_synthetic_pair,
    random_knowledge_graph,
    truncate_feature_columns,
)
from repro.exceptions import DatasetError


class TestGraphStandIns:
    @pytest.mark.parametrize(
        "loader,n_full,attrs",
        [
            (load_cora, 2708, 1433),
            (load_citeseer, 3327, 3703),
            (load_ppi, 1767, None),
            (load_facebook, 4039, 1476),
        ],
    )
    def test_scaled_statistics(self, loader, n_full, attrs):
        g = loader(scale=0.1)
        assert abs(g.n_nodes - 0.1 * n_full) < 0.2 * n_full
        if attrs is not None:
            assert g.n_features == attrs  # vocabulary never shrinks
        assert g.n_edges > 0

    def test_cora_density_matches_paper(self):
        g = load_cora(scale=0.15)
        avg_degree = 2 * g.n_edges / g.n_nodes
        paper_degree = 2 * 5278 / 2708
        assert abs(avg_degree - paper_degree) < 1.5

    def test_ppi_is_dense(self):
        g = load_ppi(scale=0.1)
        assert 2 * g.n_edges / g.n_nodes > 10  # paper: ~18

    def test_deterministic(self):
        a = load_cora(scale=0.05)
        b = load_cora(scale=0.05)
        np.testing.assert_array_equal(a.edge_list(), b.edge_list())
        np.testing.assert_array_equal(a.features, b.features)

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            load_cora(scale=0.0)
        with pytest.raises(DatasetError):
            load_ppi(scale=2.0)

    def test_features_binary_bag_of_words(self):
        g = load_cora(scale=0.05)
        assert set(np.unique(g.features)) <= {0.0, 1.0}


class TestSemiSyntheticPairs:
    def test_ground_truth_is_permutation(self):
        g = load_cora(scale=0.04)
        pair = make_semi_synthetic_pair(g, seed=0)
        gt = pair.ground_truth
        assert gt.shape == (g.n_nodes, 2)
        assert sorted(gt[:, 1].tolist()) == list(range(g.n_nodes))

    def test_clean_pair_structures_isomorphic(self):
        g = load_cora(scale=0.04)
        pair = make_semi_synthetic_pair(g, seed=1)
        perm = pair.ground_truth[:, 1]
        a = pair.source.dense_adjacency()
        b = pair.target.dense_adjacency()
        np.testing.assert_array_equal(a, b[np.ix_(perm, perm)])

    def test_edge_noise_changes_target_only(self):
        g = load_cora(scale=0.04)
        pair = make_semi_synthetic_pair(g, edge_noise=0.3, seed=2)
        assert pair.source.n_edges == g.n_edges
        assert pair.target.n_edges == g.n_edges  # moved, not deleted

    @pytest.mark.parametrize("transform", FEATURE_TRANSFORMS)
    def test_feature_transforms_apply(self, transform):
        g = load_cora(scale=0.04)
        pair = make_semi_synthetic_pair(
            g, feature_transform=transform, feature_noise=0.5, seed=3
        )
        if transform == "permutation":
            assert pair.target.n_features == g.n_features
        else:
            assert pair.target.n_features < g.n_features

    def test_unknown_transform_rejected(self):
        g = load_cora(scale=0.04)
        with pytest.raises(DatasetError):
            make_semi_synthetic_pair(g, feature_transform="quantise")

    def test_truncate_feature_columns(self):
        g = load_cora(scale=0.04)
        out = truncate_feature_columns(g, 100)
        assert out.n_features == 100
        np.testing.assert_array_equal(out.features, g.features[:, :100])

    def test_metadata_recorded(self):
        g = load_cora(scale=0.04)
        pair = make_semi_synthetic_pair(
            g, edge_noise=0.2, feature_transform="truncation", feature_noise=0.4
        )
        assert pair.metadata["edge_noise"] == 0.2
        assert pair.metadata["feature_transform"] == "truncation"


class TestAlignmentPairValidation:
    def test_out_of_range_ground_truth(self):
        g = load_cora(scale=0.04)
        with pytest.raises(DatasetError):
            AlignmentPair(g, g, np.array([[0, 10**6]]))

    def test_duplicate_sources_rejected(self):
        g = load_cora(scale=0.04)
        with pytest.raises(DatasetError):
            AlignmentPair(g, g, np.array([[0, 1], [0, 2]]))

    def test_wrong_shape_rejected(self):
        g = load_cora(scale=0.04)
        with pytest.raises(DatasetError):
            AlignmentPair(g, g, np.array([0, 1, 2]))


class TestDouban:
    def test_containment_sizes(self):
        pair = load_douban(scale=0.1)
        assert pair.source.n_nodes < pair.target.n_nodes
        assert pair.n_anchors == pair.source.n_nodes

    def test_shared_location_features(self):
        pair = load_douban(scale=0.1)
        assert pair.source.n_features == pair.target.n_features
        # every anchor's location one-hot matches across graphs
        gt = pair.ground_truth
        src_locs = pair.source.features[gt[:, 0]].argmax(axis=1)
        tgt_locs = pair.target.features[gt[:, 1]].argmax(axis=1)
        np.testing.assert_array_equal(src_locs, tgt_locs)

    def test_features_are_coarse(self):
        """Many users share a location, so features alone are weak."""
        pair = load_douban(scale=0.2)
        locations = pair.source.features.argmax(axis=1)
        assert np.unique(locations).size < pair.source.n_nodes / 1.5


class TestACMDBLP:
    def test_partial_overlap(self):
        pair = load_acm_dblp(scale=0.05)
        assert pair.n_anchors < pair.source.n_nodes
        assert pair.n_anchors < pair.target.n_nodes

    def test_venue_features(self):
        pair = load_acm_dblp(scale=0.05)
        assert pair.source.n_features == 17
        assert pair.target.n_features == 17

    def test_anchor_features_correlated(self):
        pair = load_acm_dblp(scale=0.05)
        gt = pair.ground_truth
        a = pair.source.features[gt[:, 0]]
        b = pair.target.features[gt[:, 1]]
        per_row = [np.corrcoef(x, y)[0, 1] for x, y in zip(a, b)]
        assert np.nanmean(per_row) > 0.5


class TestDBP15K:
    def test_subset_validation(self):
        with pytest.raises(DatasetError):
            load_dbp15k("de_en")

    def test_sizes_and_anchors(self):
        pair = load_dbp15k("zh_en", scale=0.01)
        assert pair.n_anchors <= min(pair.source.n_nodes, pair.target.n_nodes)
        assert pair.source.n_features == pair.target.n_features

    def test_agreement_orders_cross_lingual_similarity(self):
        """FR-EN anchors must be more feature-similar than ZH-EN."""

        def anchor_similarity(subset):
            pair = load_dbp15k(subset, scale=0.015, seed=5)
            gt = pair.ground_truth
            a = pair.source.features[gt[:, 0]]
            b = pair.target.features[gt[:, 1]]
            a = a / np.linalg.norm(a, axis=1, keepdims=True)
            b = b / np.linalg.norm(b, axis=1, keepdims=True)
            return float(np.mean(np.sum(a * b, axis=1)))

        assert anchor_similarity("fr_en") > anchor_similarity("zh_en")

    def test_metadata_carries_kgs(self):
        pair = load_dbp15k("ja_en", scale=0.01)
        assert isinstance(pair.metadata["kg_source"], KnowledgeGraph)


class TestKnowledgeGraph:
    def test_random_kg_shapes(self):
        kg = random_knowledge_graph(50, 5, 200, seed=0)
        assert kg.n_entities == 50
        assert kg.triples.shape[1] == 3
        assert kg.n_relations <= 5

    def test_to_graph_collapses_triples(self):
        kg = random_knowledge_graph(30, 3, 100, seed=1)
        g = kg.to_graph()
        assert g.n_nodes == 30
        assert g.n_edges > 0

    def test_relation_adjacency_binary_symmetric(self):
        kg = random_knowledge_graph(20, 4, 80, seed=2)
        adj = kg.relation_adjacency(0).toarray()
        np.testing.assert_array_equal(adj, adj.T)
        assert set(np.unique(adj)) <= {0.0, 1.0}

    def test_relation_out_of_range(self):
        kg = random_knowledge_graph(10, 2, 20, seed=3)
        with pytest.raises(DatasetError):
            kg.relation_adjacency(99)

    def test_invalid_triples_rejected(self):
        with pytest.raises(DatasetError):
            KnowledgeGraph(n_entities=3, triples=np.array([[0, 0, 5]]))


class TestRegistry:
    def test_catalogue(self):
        catalogue = available_datasets()
        assert "cora" in catalogue["graphs"]
        assert "douban" in catalogue["pairs"]

    def test_graph_loader_dispatch(self):
        g = load_graph_dataset("cora", scale=0.04)
        assert g.name == "cora"

    def test_pair_loader_dispatch(self):
        pair = load_pair_dataset("dbp15k_zh_en", scale=0.01)
        assert pair.name.startswith("dbp15k")

    def test_unknown_names(self):
        with pytest.raises(DatasetError):
            load_graph_dataset("imdb")
        with pytest.raises(DatasetError):
            load_pair_dataset("imdb")
