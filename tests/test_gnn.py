"""Tests for GCN/GAT layers (repro.gnn)."""

import numpy as np
import pytest

from repro.autodiff import Adam, Tensor
from repro.autodiff.functional import mse_loss
from repro.gnn import GAT, GCN, GATLayer, GCNLayer, dense_normalized_adjacency
from repro.graphs import erdos_renyi_graph


def graph_and_adj(seed=0, n=15):
    g = erdos_renyi_graph(n, 0.3, seed=seed)
    return g, dense_normalized_adjacency(g)


class TestGCN:
    def test_output_shape(self):
        g, adj = graph_and_adj()
        model = GCN([4, 8, 3], seed=0)
        out = model(adj, Tensor(np.random.default_rng(0).standard_normal((15, 4))))
        assert out.shape == (15, 3)

    def test_layer_is_propagate_then_linear(self):
        g, adj = graph_and_adj(seed=1)
        layer = GCNLayer(4, 2, activation="none", seed=0)
        x = np.random.default_rng(1).standard_normal((15, 4))
        out = layer(adj, Tensor(x))
        expected = (adj @ x) @ layer.linear.weight.data + layer.linear.bias.data
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_trains_to_fit_target(self):
        g, adj = graph_and_adj(seed=2)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((15, 4))
        target = rng.standard_normal((15, 2))
        model = GCN([4, 16, 2], seed=0)
        optim = Adam(model.parameters(), lr=0.02)
        first = None
        for step in range(150):
            loss = mse_loss(model(adj, Tensor(x)), target)
            if step == 0:
                first = loss.item()
            model.zero_grad()
            loss.backward()
            optim.step()
        assert loss.item() < 0.5 * first

    def test_requires_two_dims(self):
        with pytest.raises(ValueError):
            GCN([4])

    def test_unknown_activation(self):
        with pytest.raises(ValueError):
            GCNLayer(3, 3, activation="swish")

    def test_deterministic_given_seed(self):
        g, adj = graph_and_adj(seed=3)
        x = np.random.default_rng(3).standard_normal((15, 4))
        a = GCN([4, 6, 2], seed=42)(adj, Tensor(x)).data
        b = GCN([4, 6, 2], seed=42)(adj, Tensor(x)).data
        np.testing.assert_array_equal(a, b)


class TestGAT:
    def test_output_shape(self):
        g, _ = graph_and_adj(seed=4)
        mask = g.dense_adjacency()
        model = GAT([4, 8, 3], seed=0)
        out = model(mask, Tensor(np.random.default_rng(4).standard_normal((15, 4))))
        assert out.shape == (15, 3)

    def test_attention_respects_mask(self):
        """Disconnected nodes should not influence each other's output."""
        adj = np.zeros((4, 4))
        adj[0, 1] = adj[1, 0] = 1.0  # component {0,1}; {2},{3} isolated
        layer = GATLayer(3, 2, activation="none", seed=0)
        rng = np.random.default_rng(5)
        x = rng.standard_normal((4, 3))
        mask = adj + np.eye(4)
        base = layer(mask, Tensor(x)).data
        x2 = x.copy()
        x2[3] += 10.0  # perturb an isolated node
        moved = layer(mask, Tensor(x2)).data
        np.testing.assert_allclose(base[:3], moved[:3], atol=1e-10)

    def test_gradients_flow(self):
        g, _ = graph_and_adj(seed=6)
        mask = g.dense_adjacency()
        model = GAT([4, 5], seed=0)
        x = Tensor(np.random.default_rng(6).standard_normal((15, 4)))
        loss = (model(mask, x) ** 2).sum()
        loss.backward()
        for param in model.parameters():
            assert param.grad is not None

    def test_requires_two_dims(self):
        with pytest.raises(ValueError):
            GAT([4])
