"""Property-based tests for the partition pipeline (repro.scale).

The pipeline's contracts, checked over seeded instance families rather
than single examples:

* **joint node-permutation equivariance** — relabelling source and
  target nodes relabels every output (partitions, stitched plan,
  Hit@k) and changes nothing else.  On well-conditioned pairs the
  plan is equivariant to machine precision; the discrete metrics are
  exactly equal.
* **partitioner invariants** — k-way partitions are exact, balanced
  and covering; recursive bisection respects the size cap.
* **rebalance edge cases** — empty parts, capacity spill and the
  everyone-prefers-one-part overflow path never drop or duplicate a
  node.
"""

import numpy as np
import pytest

from repro.core import SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.eval import hits_at_k
from repro.exceptions import GraphError
from repro.graphs import (
    adjacent_parts,
    boundary_nodes,
    cut_edges,
    partition_assignment,
    permute_graph,
    stochastic_block_model,
)
from repro.graphs.features import community_bag_of_words
from repro.scale import (
    DivideAndConquerAligner,
    bisect_partition,
    kway_partition,
    rebalance,
)

CRISP_CFG = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=120, sinkhorn_iter=40,
    track_history=False,
)


def crisp_pair(seed=1, n_blocks=4, block=15):
    """A pair whose blocks the solver resolves sharply (strong
    communities, informative features): on these, equivariance holds to
    machine precision instead of solver tolerance."""
    graph = stochastic_block_model([block] * n_blocks, 0.5, 0.01, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 80, words_per_node=20, seed=seed + 1
    )
    graph = graph.with_features(feats)
    return make_semi_synthetic_pair(graph, seed=seed + 2)


class TestPermutationEquivariance:
    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_pipeline_equivariant(self, seed):
        pair = crisp_pair(seed=seed)
        n, m = pair.source.n_nodes, pair.target.n_nodes
        rng = np.random.default_rng(100 + seed)
        perm_s, perm_t = rng.permutation(n), rng.permutation(m)
        src2, _ = permute_graph(pair.source, perm=perm_s)
        tgt2, _ = permute_graph(pair.target, perm=perm_t)
        gt2 = np.column_stack(
            [perm_s[pair.ground_truth[:, 0]], perm_t[pair.ground_truth[:, 1]]]
        )

        out1 = DivideAndConquerAligner(CRISP_CFG, n_parts=4).fit(
            pair.source, pair.target
        )
        out2 = DivideAndConquerAligner(CRISP_CFG, n_parts=4).fit(src2, tgt2)

        # partitions are equivariant as sets of node sets
        assert {frozenset(perm_s[p].tolist()) for p, _ in out1.partitions} == {
            frozenset(p.tolist()) for p, _ in out2.partitions
        }
        assert {frozenset(perm_t[t].tolist()) for _, t in out1.partitions} == {
            frozenset(t.tolist()) for _, t in out2.partitions
        }
        # the stitched plan is equivariant entrywise
        dense1 = out1.plan.toarray()
        dense2 = out2.plan.toarray()
        np.testing.assert_allclose(
            dense1, dense2[np.ix_(perm_s, perm_t)], atol=1e-12
        )
        # Hit@k evaluated against the relabelled ground truth: the
        # mid-rank comparison uses exact ==/>, so a score tie sitting
        # at machine precision may break differently across the two
        # orderings — equivariance holds up to one flipped link
        one_link = 100.0 / pair.source.n_nodes
        for k in (1, 5, 10):
            assert abs(
                hits_at_k(out1.plan, pair.ground_truth, k)
                - hits_at_k(out2.plan, gt2, k)
            ) <= one_link + 1e-9

    def test_kway_partition_equivariant(self):
        graph = crisp_pair(seed=3).source
        rng = np.random.default_rng(7)
        perm = rng.permutation(graph.n_nodes)
        permuted, _ = permute_graph(graph, perm=perm)
        parts1 = kway_partition(graph, 4)
        parts2 = kway_partition(permuted, 4)
        assert {frozenset(perm[p].tolist()) for p in parts1} == {
            frozenset(p.tolist()) for p in parts2
        }


class TestPartitioners:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_kway_exact_balanced_covering(self, k):
        graph = stochastic_block_model([12] * 4, 0.3, 0.02, seed=k)
        parts = kway_partition(graph, k)
        assert len(parts) == k
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1
        covered = np.concatenate(parts)
        assert sorted(covered.tolist()) == list(range(graph.n_nodes))

    def test_kway_rejects_bad_counts(self):
        graph = stochastic_block_model([10], 0.3, 0.0, seed=0)
        with pytest.raises(GraphError):
            kway_partition(graph, 0)
        with pytest.raises(GraphError):
            kway_partition(graph, graph.n_nodes + 1)

    def test_bisect_respects_size_cap(self):
        graph = stochastic_block_model([20] * 4, 0.35, 0.01, seed=2)
        parts = bisect_partition(graph, max_block_size=30, min_block_size=8)
        assert all(p.size <= 30 or p.size < 16 for p in parts)
        covered = np.concatenate(parts)
        assert sorted(covered.tolist()) == list(range(graph.n_nodes))


class TestPartitionHelpers:
    def graph_and_parts(self):
        graph = stochastic_block_model([10, 10], 0.6, 0.1, seed=0)
        parts = [np.arange(10), np.arange(10, 20)]
        return graph, parts

    def test_assignment_roundtrip(self):
        graph, parts = self.graph_and_parts()
        assignment = partition_assignment(parts, graph.n_nodes)
        assert np.array_equal(assignment[:10], np.zeros(10))
        assert np.array_equal(assignment[10:], np.ones(10))

    def test_assignment_rejects_overlap(self):
        with pytest.raises(GraphError):
            partition_assignment([np.array([0, 1]), np.array([1, 2])], 5)

    def test_cut_and_boundary_consistent(self):
        graph, parts = self.graph_and_parts()
        assignment = partition_assignment(parts, graph.n_nodes)
        crossing = cut_edges(graph, assignment)
        assert crossing.size > 0  # p_out=0.1 guarantees some cut edges
        assert np.all(assignment[crossing[:, 0]] != assignment[crossing[:, 1]])
        nodes = boundary_nodes(graph, assignment)
        assert set(nodes.tolist()) == set(np.unique(crossing).tolist())
        assert adjacent_parts(graph, assignment) == {(0, 1)}

    def test_unassigned_nodes_count_as_cut(self):
        graph, _ = self.graph_and_parts()
        partial = [np.arange(10)]  # nodes 10..19 unassigned
        assignment = partition_assignment(partial, graph.n_nodes)
        crossing = cut_edges(graph, assignment)
        # every edge inside the unassigned half is lost too
        degrees_inside = graph.subgraph(np.arange(10, 20)).n_edges
        assert crossing.shape[0] >= degrees_inside


class TestRebalance:
    def scores(self, m, p, seed=0):
        return np.random.default_rng(seed).random((m, p))

    def test_empty_source_part_gets_minimal_capacity(self):
        source_parts = [np.arange(5), np.empty(0, dtype=np.int64)]
        scores = np.array([[0.1, 0.9]] * 4 + [[0.9, 0.1]])
        target_parts = [np.flatnonzero(scores.argmax(1) == p) for p in (0, 1)]
        out = rebalance(target_parts, source_parts, scores)
        # the empty part has capacity 1: exactly one of the four nodes
        # that prefer it fits, the rest spill to part 0
        assert out[1].size == 1
        assert sorted(np.concatenate(out).tolist()) == list(range(5))

    def test_capacity_spill_to_next_best(self):
        source_parts = [np.arange(2), np.arange(2, 4)]  # capacities 4, 4
        rng = np.random.default_rng(1)
        scores = np.column_stack([np.full(6, 0.9), rng.random(6) * 0.5])
        out = rebalance(
            [np.arange(6), np.empty(0, dtype=np.int64)], source_parts, scores
        )
        assert out[0].size == 4  # capacity cap
        assert out[1].size == 2  # spilled nodes land in their second choice
        assert sorted(np.concatenate(out).tolist()) == list(range(6))

    def test_all_nodes_prefer_one_overflowing_part(self):
        # total capacity (2+2) < nodes (6): the overflow path must keep
        # every node, dumping the excess on its top preference
        source_parts = [np.array([0]), np.array([1])]
        scores = np.column_stack([np.full(6, 1.0), np.zeros(6)])
        out = rebalance(
            [np.arange(6), np.empty(0, dtype=np.int64)], source_parts, scores
        )
        merged = sorted(np.concatenate(out).tolist())
        assert merged == list(range(6))
        # capacity 2 each: two nodes fill part 0, two spill to part 1,
        # and the last two overflow back onto their top preference
        assert out[0].size == 4
        assert out[1].size == 2

    def test_no_duplicates_random(self):
        rng = np.random.default_rng(3)
        for trial in range(10):
            p = int(rng.integers(1, 5))
            m = int(rng.integers(1, 30))
            source_parts = [
                np.arange(int(rng.integers(0, 6))) for _ in range(p)
            ]
            scores = rng.random((m, p))
            out = rebalance(
                [np.empty(0, dtype=np.int64)] * p, source_parts, scores
            )
            merged = np.concatenate(out) if out else np.empty(0)
            assert sorted(merged.tolist()) == list(range(m))
