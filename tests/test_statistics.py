"""Tests for graph statistics + dataset-character validation."""

import numpy as np
import pytest

from repro.datasets import load_cora, load_ppi, make_semi_synthetic_pair
from repro.exceptions import GraphError
from repro.graphs import (
    AttributedGraph,
    average_degree,
    clustering_coefficient,
    degree_gini,
    density,
    edge_overlap,
    erdos_renyi_graph,
    feature_sparsity,
    modularity,
    stochastic_block_model,
    structural_summary,
    watts_strogatz_graph,
)


def triangle_plus_leaf():
    return AttributedGraph.from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])


class TestBasicStatistics:
    def test_average_degree(self):
        assert average_degree(triangle_plus_leaf()) == pytest.approx(2.0)

    def test_density(self):
        g = triangle_plus_leaf()
        assert density(g) == pytest.approx(4 / 6)

    def test_density_trivial(self):
        assert density(AttributedGraph.from_edges(1, [])) == 0.0

    def test_clustering_of_triangle(self):
        g = AttributedGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])
        assert clustering_coefficient(g) == pytest.approx(1.0)

    def test_clustering_of_star_zero(self):
        g = AttributedGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert clustering_coefficient(g) == 0.0

    def test_gini_regular_graph_zero(self):
        g = watts_strogatz_graph(20, 4, 0.0, seed=0)
        assert degree_gini(g) == pytest.approx(0.0, abs=1e-9)

    def test_gini_star_high(self):
        # star on n=10: degrees [9, 1x9] -> Gini = 0.4 exactly
        g = AttributedGraph.from_edges(10, [(0, i) for i in range(1, 10)])
        assert degree_gini(g) == pytest.approx(0.4, abs=1e-9)
        # and far above the regular-graph value of 0
        assert degree_gini(g) > 0.3

    def test_modularity_of_sbm_positive(self):
        g = stochastic_block_model([20, 20], 0.4, 0.02, seed=0)
        assert modularity(g) > 0.2

    def test_modularity_requires_labels(self):
        g = erdos_renyi_graph(10, 0.3, seed=1)
        with pytest.raises(GraphError):
            modularity(g)

    def test_feature_sparsity(self):
        g = triangle_plus_leaf().with_features(np.eye(4))
        assert feature_sparsity(g) == pytest.approx(0.75)

    def test_summary_bundle(self):
        g = stochastic_block_model([10, 10], 0.4, 0.05, seed=2).with_features(
            np.eye(20)
        )
        g.node_labels = np.repeat([0, 1], 10)
        summary = structural_summary(g)
        assert {"n_nodes", "average_degree", "clustering", "modularity"} <= set(
            summary
        )


class TestEdgeOverlap:
    def test_identical_graphs(self):
        g = erdos_renyi_graph(15, 0.3, seed=3)
        assert edge_overlap(g, g) == 1.0

    def test_perturbation_reduces_overlap(self):
        from repro.graphs import perturb_edges

        g = erdos_renyi_graph(30, 0.2, seed=4)
        mild = edge_overlap(g, perturb_edges(g, 0.1, seed=5))
        heavy = edge_overlap(g, perturb_edges(g, 0.6, seed=5))
        assert mild > heavy

    def test_size_mismatch(self):
        with pytest.raises(GraphError):
            edge_overlap(erdos_renyi_graph(5, 0.5, seed=6), erdos_renyi_graph(6, 0.5, seed=7))


class TestDatasetCharacter:
    """The stand-ins must exhibit the real datasets' statistics."""

    def test_cora_standin_sparse_and_clustered(self):
        g = load_cora(scale=0.1)
        assert 2.0 < average_degree(g) < 7.0  # paper: 3.9
        assert feature_sparsity(g) > 0.95  # bag-of-words is sparse

    def test_ppi_standin_dense(self):
        g = load_ppi(scale=0.1)
        assert average_degree(g) > 10.0  # paper: ~18

    def test_edge_noise_overlap_tracks_ratio(self):
        g = load_cora(scale=0.05)
        pair = make_semi_synthetic_pair(g, edge_noise=0.4, seed=0)
        perm = pair.ground_truth[:, 1]
        # relabel target back to source ids to compare edge sets
        inverse = np.argsort(perm)
        relabelled = pair.target.subgraph(perm)
        overlap = edge_overlap(pair.source, relabelled)
        # moving 40% of edges leaves roughly 60/140 Jaccard overlap
        assert 0.25 < overlap < 0.6
