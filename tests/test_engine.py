"""Tests for the unified alignment engine (repro.engine).

Covers the three-stage pipeline contract, the content-keyed plan
cache, the solver-backend registry (including the choice-naming error
messages) and the representation-agnostic evaluate adapter.  The
batched-vs-serial bitwise contract has its own module
(``tests/test_batched_restart.py``).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import SLOTAlign, SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.engine import (
    AlignmentEngine,
    PlanCache,
    available_backends,
    evaluate_alignment,
    get_backend,
    graph_digest,
    view_spec,
)
from repro.exceptions import ConfigError
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words

FAST = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=25, sinkhorn_iter=20,
    track_history=False,
)


def bench_pair(seed=0, n_per_block=12):
    graph = stochastic_block_model([n_per_block] * 3, 0.4, 0.02, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 30, words_per_node=6, seed=seed + 1
    )
    graph = graph.with_features(feats)
    graph.node_labels = None
    return make_semi_synthetic_pair(graph, edge_noise=0.1, seed=seed + 2)


class TestRegistry:
    def test_builtin_backends_registered(self):
        backends = available_backends()
        for name in ("fused-dense", "batched-restart", "sparse"):
            assert name in backends
            assert backends[name]  # has a description

    def test_unknown_backend_names_choices(self):
        with pytest.raises(ConfigError, match="valid backends"):
            get_backend("gpu")
        with pytest.raises(ConfigError, match="fused-dense"):
            get_backend("gpu")

    def test_engine_solve_validates_backend_lazily(self):
        pair = bench_pair()
        engine = AlignmentEngine(FAST, backend="definitely-not-a-backend")
        with pytest.raises(ConfigError, match="valid backends"):
            engine.align(pair.source, pair.target)


class TestPipelineStages:
    def test_run_reports_stage_seconds_and_metrics(self):
        pair = bench_pair()
        engine = AlignmentEngine(FAST, cache=None)
        run = engine.run(pair.source, pair.target, pair.ground_truth, ks=(1, 5))
        assert set(run.stage_seconds) == {"plan", "solve", "evaluate"}
        assert all(s >= 0.0 for s in run.stage_seconds.values())
        assert set(run.metrics) == {"hits@1", "hits@5", "mrr"}
        assert run.result.extras["backend"] == "fused-dense"

    def test_align_matches_slotalign_shim(self):
        """SLOTAlign.fit is a thin shim over the engine: same plan."""
        pair = bench_pair()
        engine_result = AlignmentEngine(FAST, cache=None).align(
            pair.source, pair.target
        )
        shim_result = SLOTAlign(FAST).fit(pair.source, pair.target)
        np.testing.assert_array_equal(engine_result.plan, shim_result.plan)

    def test_injected_bases_skip_construction(self):
        pair = bench_pair()
        engine = AlignmentEngine(FAST, cache=None)
        bases = engine.plan(pair.source, pair.target).bases
        problem = engine.plan(pair.source, pair.target, bases=bases)
        assert problem.basis_seconds == 0.0
        result = engine.solve(problem)
        reference = engine.align(pair.source, pair.target)
        np.testing.assert_array_equal(result.plan, reference.plan)

    def test_sparse_backend_returns_csr(self):
        pair = bench_pair()
        engine = AlignmentEngine(
            FAST,
            backend="sparse",
            backend_options={"n_parts": 2, "executor": "serial"},
        )
        out = engine.align(pair.source, pair.target)
        assert sp.issparse(out.plan)
        assert out.extras["n_parts"] == 2
        assert out.extras["solver_backend"] == "fused-dense"

    def test_sparse_backend_rejects_init_plan(self):
        pair = bench_pair()
        engine = AlignmentEngine(
            FAST, backend="sparse", backend_options={"n_parts": 2}
        )
        n, m = pair.source.n_nodes, pair.target.n_nodes
        problem = engine.plan(
            pair.source, pair.target, init_plan=np.full((n, m), 1.0 / (n * m))
        )
        with pytest.raises(ConfigError, match="init_plan"):
            engine.solve(problem)


class TestPlanCache:
    def test_repeated_pairs_hit_the_cache(self):
        pair = bench_pair()
        cache = PlanCache()
        engine = AlignmentEngine(FAST, cache=cache)
        engine.align(pair.source, pair.target)
        assert cache.misses == 2 and cache.hits == 0
        engine.align(pair.source, pair.target)
        assert cache.misses == 2 and cache.hits == 2

    def test_cache_is_content_keyed_not_identity_keyed(self):
        """A structurally identical rebuild of the graph hits the cache."""
        pair = bench_pair()
        clone = type(pair.source)(
            pair.source.adjacency.copy(),
            features=np.array(pair.source.features, copy=True),
        )
        cache = PlanCache()
        cache.bases_for(pair.source, FAST)
        before = cache.misses
        cache.bases_for(clone, FAST)
        assert cache.misses == before and cache.hits == 1

    def test_cached_bases_are_bitwise_equal_to_fresh(self):
        pair = bench_pair()
        cache = PlanCache()
        first = cache.bases_for(pair.source, FAST)
        second = cache.bases_for(pair.source, FAST)
        fresh = AlignmentEngine(FAST, cache=None).plan(
            pair.source, pair.target
        ).bases[0]
        for a, b, c in zip(first, second, fresh):
            np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(a, c)

    def test_view_spec_distinguishes_construction_params(self):
        a = view_spec(FAST)
        b = view_spec(
            SLOTAlignConfig(
                n_bases=2, structure_lr=0.1, center_kernels=True
            )
        )
        assert a != b

    def test_digest_distinguishes_feature_changes(self):
        pair = bench_pair()
        altered = pair.source.with_features(pair.source.features * 2.0)
        assert graph_digest(pair.source) != graph_digest(altered)

    def test_eviction_respects_byte_budget(self):
        pair = bench_pair()
        tiny = PlanCache(max_bytes=1)  # nothing fits
        tiny.bases_for(pair.source, FAST)
        tiny.bases_for(pair.source, FAST)
        assert len(tiny) == 0
        assert tiny.hits == 0 and tiny.misses == 2

    def test_solver_output_unaffected_by_caching(self):
        pair = bench_pair()
        cached_engine = AlignmentEngine(FAST, cache=PlanCache())
        uncached = AlignmentEngine(FAST, cache=None).align(
            pair.source, pair.target
        )
        first = cached_engine.align(pair.source, pair.target)
        second = cached_engine.align(pair.source, pair.target)
        np.testing.assert_array_equal(uncached.plan, first.plan)
        np.testing.assert_array_equal(first.plan, second.plan)


class TestEvaluateAdapter:
    def test_dense_and_sparse_agree(self):
        rng = np.random.default_rng(0)
        plan = rng.random((12, 12))
        plan[plan < 0.7] = 0.0
        gt = np.stack([np.arange(12), np.arange(12)], axis=1)
        dense = evaluate_alignment(plan, gt, ks=(1, 5))
        sparse = evaluate_alignment(sp.csr_array(plan), gt, ks=(1, 5))
        assert dense == sparse

    def test_accepts_result_objects_and_runtime(self):
        pair = bench_pair()
        result = AlignmentEngine(FAST, cache=None).align(
            pair.source, pair.target
        )
        report = evaluate_alignment(
            result, pair.ground_truth, ks=(1,), with_runtime=True
        )
        assert "hits@1" in report and "time" in report
        assert report["time"] == pytest.approx(result.runtime)

    def test_accepts_partitioned_alignment(self):
        pair = bench_pair()
        out = AlignmentEngine(
            FAST, backend="sparse",
            backend_options={"n_parts": 2, "executor": "serial"},
        ).align(pair.source, pair.target)
        report = evaluate_alignment(out, pair.ground_truth, ks=(1, 5))
        assert set(report) == {"hits@1", "hits@5", "mrr"}


class TestDeprecatedScalabilityShim:
    def test_import_warns_and_reexports(self):
        import importlib
        import sys

        sys.modules.pop("repro.core.scalability", None)
        with pytest.warns(DeprecationWarning, match="repro.scale"):
            module = importlib.import_module("repro.core.scalability")
        from repro.scale.aligner import DivideAndConquerAligner

        assert module.DivideAndConquerAligner is DivideAndConquerAligner

    def test_warning_points_at_the_import_site(self):
        """The deprecation must blame the caller's import, not the
        import machinery — ``importlib.import_module`` included (its
        frame is *not* natively skipped by ``warnings``)."""
        import importlib
        import sys
        import warnings
        from pathlib import Path

        for importer in (
            lambda: importlib.import_module("repro.core.scalability"),
            lambda: __import__("repro.core.scalability"),
        ):
            sys.modules.pop("repro.core.scalability", None)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                importer()
            locations = [
                warning
                for warning in caught
                if issubclass(warning.category, DeprecationWarning)
                and "repro.scale" in str(warning.message)
            ]
            assert locations, "shim import did not warn"
            assert (
                Path(locations[0].filename).resolve() == Path(__file__).resolve()
            ), f"warning blamed {locations[0].filename}"


class TestDenseBackendGuards:
    def test_slotalign_rejects_sparse_backend_upfront(self):
        pair = bench_pair()
        aligner = SLOTAlign(FAST, backend="sparse")
        with pytest.raises(ConfigError, match="dense backends.*fused-dense"):
            aligner.fit(pair.source, pair.target)

    def test_block_solver_rejects_sparse_backend(self):
        from repro.scale import DivideAndConquerAligner

        with pytest.raises(ConfigError, match="dense backends"):
            DivideAndConquerAligner(FAST, solver_backend="sparse")

    def test_backend_kind_and_dense_listing(self):
        from repro.engine import backend_kind, dense_backends

        assert backend_kind("fused-dense") == "dense"
        assert backend_kind("batched-restart") == "dense"
        assert backend_kind("sparse") == "sparse"
        assert "sparse" not in dense_backends()
        with pytest.raises(ConfigError, match="valid backends"):
            backend_kind("nope")


class TestPlanCacheThreadSafety:
    def test_concurrent_access_with_eviction_pressure(self):
        """Threaded block solves share the process-wide cache; hammer
        get/store/evict from several threads under a budget that forces
        constant eviction and assert no corruption."""
        import threading

        pairs = [bench_pair(seed=s) for s in range(4)]
        graphs = [p.source for p in pairs] + [p.target for p in pairs]
        one_entry = sum(
            b.nbytes for b in PlanCache().bases_for(graphs[0], FAST)
        )
        cache = PlanCache(max_bytes=2 * one_entry)  # room for ~2 entries
        errors = []

        def worker():
            try:
                for _ in range(10):
                    for graph in graphs:
                        bases = cache.bases_for(graph, FAST)
                        assert len(bases) == FAST.n_bases
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.nbytes <= cache.max_bytes

    def test_concurrent_misses_build_each_key_exactly_once(self):
        """Single-flight: a burst of threads requesting the same keys
        must trigger exactly one construction per key, with nbytes
        accounting exact and every shared array frozen."""
        import threading

        pairs = [bench_pair(seed=s) for s in range(3)]
        graphs = [p.source for p in pairs] + [p.target for p in pairs]
        cache = PlanCache()
        barrier = threading.Barrier(8)
        errors = []
        results: list[list] = []

        def worker():
            try:
                barrier.wait()
                for graph in graphs:
                    results.append(cache.bases_for(graph, FAST))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # one build per distinct key, no duplicated kernel construction
        assert cache.builds == len(graphs)
        assert len(cache) == len(graphs)
        assert cache.hits + cache.misses == 8 * len(graphs)
        # nbytes accounting must equal the exact sum of held arrays
        expected = sum(
            sum(b.nbytes for b in cache.bases_for(g, FAST)) for g in graphs
        )
        assert cache.nbytes == expected
        # every array handed out (builder or waiter) honours the
        # frozen-array contract
        for bases in results:
            for basis in bases:
                assert not basis.flags.writeable

    def test_single_flight_serves_waiters_of_uncacheable_entries(self):
        """Waiters must receive the builder's arrays even when the
        finished entry is too large to retain in the cache."""
        import threading

        pair = bench_pair()
        cache = PlanCache(max_bytes=1)  # nothing fits
        barrier = threading.Barrier(6)
        errors = []
        outputs = []

        def worker():
            try:
                barrier.wait()
                outputs.append(cache.bases_for(pair.source, FAST))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(outputs) == 6
        reference = outputs[0]
        for bases in outputs[1:]:
            for a, b in zip(reference, bases):
                np.testing.assert_array_equal(a, b)
        assert len(cache) == 0  # never cached — but everyone was served

    def test_shared_plan_cache_is_one_instance_under_races(self):
        """Regression: the lazy singleton used to be unsynchronized —
        two threads racing on first use each built a PlanCache."""
        import threading

        from repro.engine import planning

        original = planning._SHARED_CACHE
        try:
            planning._SHARED_CACHE = None
            barrier = threading.Barrier(8)
            seen = []

            def worker():
                barrier.wait()
                seen.append(planning.shared_plan_cache())

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len({id(cache) for cache in seen}) == 1
        finally:
            planning._SHARED_CACHE = original


class TestCacheReadOnlyContract:
    def test_cached_bases_are_frozen(self):
        """In-place mutation of shared cached bases must raise, not
        silently poison every future content-equal solve."""
        pair = bench_pair()
        cache = PlanCache()
        bases = cache.bases_for(pair.source, FAST)
        with pytest.raises(ValueError, match="read-only"):
            bases[0][0, 0] = 1.0
