"""Tests for the project lint subsystem (repro.analysis).

Covers the acceptance contract of the static-analysis PR:

* the committed tree lints clean with the default rule set,
* every rule fires on a seeded violation (synthetic modules),
* mutating a bitwise-pinned function trips the fingerprint rule while
  doc/formatting-only edits do not,
* ``pins.json`` matches the tree (the CI invariant),
* inline suppression and the CLI exit-code surface behave as
  documented.
"""

import ast
import copy
import json
from pathlib import Path

import pytest

from repro.analysis import iter_modules, run_lint, update_pins
from repro.analysis.core import (
    PACKAGE_ROOT,
    Finding,
    LintError,
    Module,
    qualname_walk,
)
from repro.analysis.densify import NoDensifyRule
from repro.analysis.guards import GuardedByRule
from repro.analysis.pins import (
    PinnedPathRule,
    collect_pinned,
    fingerprint,
    load_pins,
)
from repro.analysis.unused import UnusedNameRule
from repro.cli import main


def module(source: str, rel: str = "core/x.py") -> Module:
    return Module(f"src/repro/{rel}", source, rel)


GUARDED_CLASS = '''
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self.count = 0  #: guarded-by: _lock, _not_empty
        self.plain = 0

    def read_unguarded(self):
        return self.count

    def read_guarded(self):
        with self._lock:
            return self.count

    def read_via_alias(self):
        with self._not_empty:
            return self.count

    def touch_plain(self):
        return self.plain

    def helper(self):  #: requires: _lock
        self.count += 1
'''


class TestTreeContract:
    def test_full_tree_lints_clean(self):
        findings = run_lint()
        assert findings == [], "\n".join(f.format() for f in findings)

    def test_pins_match_tree(self):
        """The CI invariant: committed pins.json == regenerated pins."""
        committed = load_pins()
        current = {
            qual: digest
            for qual, (digest, _, _) in collect_pinned(iter_modules()).items()
        }
        assert committed == current

    def test_contract_paths_are_pinned(self):
        pins = load_pins()
        for expected in (
            "ot/sinkhorn.py::sinkhorn_log_kernel_fast",
            "ot/sinkhorn.py::sinkhorn_log_kernel_fast_batched",
            "engine/batched.py::_LockstepPortfolio._step_all",
            "core/objective.py::JointObjective.plan_gradient",
        ):
            assert expected in pins, f"missing pin for {expected}"

    def test_declared_guards_exist_in_tree(self):
        """The serve/engine shared state actually carries declarations."""
        sources = {
            "serve/jobs.py": "#: guarded-by: _lock, _not_empty",
            "serve/service.py": "#: guarded-by: _stats_lock",
            "engine/planning.py": "#: guarded-by: _lock",
        }
        for rel, marker in sources.items():
            text = (PACKAGE_ROOT / rel).read_text(encoding="utf-8")
            assert marker in text, f"{rel} lost its {marker!r} declaration"


class TestGuardedByRule:
    def check(self, source):
        return run_lint(modules=[module(source)], rules=[GuardedByRule()])

    def test_unguarded_access_flagged(self):
        findings = self.check(GUARDED_CLASS)
        assert len(findings) == 1
        assert findings[0].rule_id == "guarded-by"
        assert "Counter.count" in findings[0].message
        # the three guarded/contracted accesses and the undeclared
        # attribute produce nothing
        assert findings[0].line == GUARDED_CLASS.splitlines().index(
            "        return self.count"
        ) + 1

    def test_alias_lock_counts_as_guard(self):
        body = GUARDED_CLASS.replace(
            "    def read_unguarded(self):\n        return self.count\n", ""
        )
        assert self.check(body) == []

    def test_requires_marker_trusts_the_caller(self):
        source = '''
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.state = {}  #: guarded-by: _lock

    def mutate(self):  #: requires: _lock
        self.state["k"] = 1
'''
        assert self.check(source) == []

    def test_init_is_exempt(self):
        source = '''
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
        self.state = 0  #: guarded-by: _lock
        self.state = self.state + 1
'''
        assert self.check(source) == []

    def test_suppression_silences_the_finding(self):
        source = GUARDED_CLASS.replace(
            "        return self.count\n",
            "        return self.count  # repro-lint: ignore[guarded-by]\n",
            1,
        )
        assert self.check(source) == []


PINNED_FUNC = '''
def kernel(x):  #: pinned
    """Docstring."""
    total = 0
    for item in x:
        total += item * 2
    return total
'''


class TestPinnedPathRule:
    def write_tree(self, tmp_path, source):
        target = tmp_path / "mod.py"
        target.write_text(source, encoding="utf-8")
        return target

    def test_mutating_a_pinned_function_fires(self, tmp_path):
        target = self.write_tree(tmp_path, PINNED_FUNC)
        pins_path = tmp_path / "pins.json"
        update_pins(root=tmp_path, pins_path=pins_path)

        def lint():
            return run_lint(
                root=tmp_path,
                rules=[PinnedPathRule(pins_path=pins_path, check_stale=False)],
            )

        assert lint() == []
        target.write_text(
            PINNED_FUNC.replace("item * 2", "item * 3"), encoding="utf-8"
        )
        findings = lint()
        assert len(findings) == 1
        assert findings[0].rule_id == "pinned-path"
        assert "bitwise-pinned" in findings[0].message
        assert "new solver backend" in findings[0].message

    def test_doc_and_format_edits_keep_the_fingerprint(self, tmp_path):
        target = self.write_tree(tmp_path, PINNED_FUNC)
        pins_path = tmp_path / "pins.json"
        update_pins(root=tmp_path, pins_path=pins_path)
        reformatted = PINNED_FUNC.replace(
            '"""Docstring."""', '"""A new, improved docstring."""'
        ).replace("total += item * 2", "total += (item * 2)  # comment")
        target.write_text(reformatted, encoding="utf-8")
        assert (
            run_lint(
                root=tmp_path,
                rules=[PinnedPathRule(pins_path=pins_path, check_stale=False)],
            )
            == []
        )

    def test_real_pinned_ast_mutation_changes_fingerprint(self):
        """Mutate the committed fast-Sinkhorn AST; its hash must move
        off the committed pin."""
        modules = {m.rel: m for m in iter_modules()}
        sinkhorn = modules["ot/sinkhorn.py"]
        pinned = dict(qualname_walk(sinkhorn.tree))
        node = pinned["sinkhorn_log_kernel_fast"]
        committed = load_pins()["ot/sinkhorn.py::sinkhorn_log_kernel_fast"]
        assert fingerprint(node) == committed
        mutated = copy.deepcopy(node)
        mutated.body.append(ast.Pass())
        assert fingerprint(mutated) != committed

    def test_unpinned_marker_needs_a_committed_entry(self, tmp_path):
        self.write_tree(tmp_path, PINNED_FUNC)
        pins_path = tmp_path / "pins.json"  # never written
        findings = run_lint(
            root=tmp_path,
            rules=[PinnedPathRule(pins_path=pins_path, check_stale=False)],
        )
        assert len(findings) == 1
        assert "no entry" in findings[0].message

    def test_stale_pin_detected_on_full_runs(self, tmp_path):
        target = self.write_tree(tmp_path, PINNED_FUNC)
        pins_path = tmp_path / "pins.json"
        update_pins(root=tmp_path, pins_path=pins_path)
        target.write_text("def kernel(x):\n    return x\n", encoding="utf-8")
        findings = run_lint(
            root=tmp_path, rules=[PinnedPathRule(pins_path=pins_path)]
        )
        assert len(findings) == 1
        assert "stale pin" in findings[0].message

    def test_update_pins_is_deterministic(self, tmp_path):
        self.write_tree(tmp_path, PINNED_FUNC)
        pins_path = tmp_path / "pins.json"
        update_pins(root=tmp_path, pins_path=pins_path)
        first = pins_path.read_bytes()
        update_pins(root=tmp_path, pins_path=pins_path)
        assert pins_path.read_bytes() == first
        assert first.endswith(b"\n")
        json.loads(first)  # well-formed


class TestNoDensifyRule:
    def check(self, source, rel):
        return run_lint(
            modules=[module(source, rel=rel)], rules=[NoDensifyRule()]
        )

    def test_toarray_flagged_in_scope(self):
        source = "def f(plan):\n    return plan.toarray()\n"
        for rel in ("scale/metrics.py", "engine/evaluate.py"):
            findings = self.check(source, rel)
            assert len(findings) == 1
            assert findings[0].rule_id == "no-densify"

    def test_out_of_scope_modules_are_ignored(self):
        source = "def f(plan):\n    return plan.toarray()\n"
        assert self.check(source, "core/objective.py") == []

    def test_asarray_over_adjacency_flagged(self):
        source = "import numpy as np\n\ndef f(graph):\n    return np.asarray(graph.adjacency)\n"
        findings = self.check(source, "scale/x.py")
        assert len(findings) == 1
        assert "adjacency" in findings[0].message

    def test_asarray_over_plain_operand_allowed(self):
        source = "import numpy as np\n\ndef f(weights):\n    return np.asarray(weights)\n"
        assert self.check(source, "scale/x.py") == []

    def test_dense_plan_guard_site_is_allowlisted(self):
        source = (
            "class PartitionedAlignment:\n"
            "    def dense_plan(self, force=False):\n"
            "        return self.plan.toarray()\n"
            "\n"
            "    def other(self):\n"
            "        return self.plan.toarray()\n"
        )
        findings = self.check(source, "scale/aligner.py")
        assert len(findings) == 1  # only the non-guard method fires
        assert findings[0].line == 6

    def test_real_guard_site_and_suppression_hold(self):
        """The tree's two densification points stay exactly as blessed."""
        partition = (PACKAGE_ROOT / "scale/partition.py").read_text()
        assert "# repro-lint: ignore[no-densify]" in partition
        aligner_findings = [
            f
            for f in run_lint(rules=[NoDensifyRule()])
            if f.path.endswith("aligner.py")
        ]
        assert aligner_findings == []


class TestUnusedNameRule:
    def check(self, source, rel="core/x.py"):
        return run_lint(modules=[module(source, rel=rel)], rules=[UnusedNameRule()])

    def test_dead_import_flagged(self):
        findings = self.check("import os\n\nVALUE = 1\n")
        assert len(findings) == 1
        assert "'os'" in findings[0].message

    def test_used_and_future_imports_pass(self):
        source = (
            "from __future__ import annotations\n"
            "import os\n\n"
            "def f():\n    return os.getpid()\n"
        )
        assert self.check(source) == []

    def test_all_export_counts_as_use(self):
        source = "from os import getpid\n\n__all__ = [\"getpid\"]\n"
        assert self.check(source) == []

    def test_package_init_is_exempt(self):
        assert self.check("from os import getpid\n", rel="core/__init__.py") == []

    def test_dotted_side_effect_import_is_exempt(self):
        source = "import scipy.sparse.linalg\n\nVALUE = 1\n"
        assert self.check(source) == []

    def test_dead_local_flagged_once_against_its_scope(self):
        source = (
            "def outer():\n"
            "    def inner():\n"
            "        dead = 1\n"
            "        return 2\n"
            "    return inner()\n"
        )
        findings = self.check(source)
        assert len(findings) == 1
        assert "inner()" in findings[0].message

    def test_closure_reads_count_as_use(self):
        source = (
            "def outer():\n"
            "    shared = 1\n"
            "    def inner():\n"
            "        return shared\n"
            "    return inner()\n"
        )
        assert self.check(source) == []

    def test_underscore_and_unpacking_are_exempt(self):
        source = (
            "def f(pairs):\n"
            "    _scratch = 1\n"
            "    a, b = pairs\n"
            "    return a\n"
        )
        assert self.check(source) == []


class TestSuppressionAndEngine:
    def test_standalone_comment_applies_to_next_line(self):
        source = (
            "def f(plan):\n"
            "    # repro-lint: ignore[no-densify]\n"
            "    return plan.toarray()\n"
        )
        assert (
            run_lint(
                modules=[module(source, rel="scale/x.py")],
                rules=[NoDensifyRule()],
            )
            == []
        )

    def test_wildcard_suppresses_every_rule(self):
        source = "def f(plan):\n    return plan.toarray()  # repro-lint: ignore[*]\n"
        assert (
            run_lint(
                modules=[module(source, rel="scale/x.py")],
                rules=[NoDensifyRule()],
            )
            == []
        )

    def test_finding_format_is_clickable(self):
        finding = Finding(
            path="src/repro/serve/jobs.py", line=141,
            rule_id="guarded-by", message="boom",
        )
        assert finding.format() == "src/repro/serve/jobs.py:141: [guarded-by] boom"

    def test_marker_found_on_wrapped_signature(self):
        source = (
            "def kernel(\n"
            "    x,\n"
            "    y,\n"
            "):  #: pinned\n"
            "    return x + y\n"
        )
        mod = module(source)
        func = mod.tree.body[0]
        assert mod.marker(func, "pinned") is not None

    def test_bad_root_raises_lint_error(self):
        with pytest.raises(LintError, match="does not exist"):
            run_lint(root=Path("/nonexistent/lint/root"))


class TestLintCLI:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "repro lint: clean" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("pinned-path", "guarded-by", "no-densify", "unused-name"):
            assert rule_id in out

    def test_partial_path_run_skips_stale_check(self, capsys):
        assert main(["lint", str(PACKAGE_ROOT / "ot" / "sinkhorn.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(GUARDED_CLASS, encoding="utf-8")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[guarded-by]" in out
        assert "1 finding(s)" in out
