"""Tests for Sinkhorn solvers (repro.ot.sinkhorn)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConvergenceError, ShapeError
from repro.ot import (
    emd,
    sinkhorn,
    sinkhorn_log,
    sinkhorn_log_kernel_fast,
    sinkhorn_projection,
    transport_cost,
)
from repro.ot.sinkhorn import _SUBNORMAL_FLUSH, SinkhornResult


def random_problem(n, m, seed=0):
    rng = np.random.default_rng(seed)
    cost = rng.random((n, m))
    mu = rng.dirichlet(np.ones(n))
    nu = rng.dirichlet(np.ones(m))
    return cost, mu, nu


class TestSinkhorn:
    def test_marginals_satisfied(self):
        cost, mu, nu = random_problem(6, 8)
        result = sinkhorn(cost, mu, nu, epsilon=0.1)
        np.testing.assert_allclose(result.plan.sum(axis=1), mu, atol=1e-6)
        np.testing.assert_allclose(result.plan.sum(axis=0), nu, atol=1e-6)

    def test_nonnegative_plan(self):
        cost, mu, nu = random_problem(5, 5, seed=1)
        result = sinkhorn(cost, mu, nu, epsilon=0.05)
        assert np.all(result.plan >= 0)

    def test_converged_flag(self):
        cost, mu, nu = random_problem(4, 4, seed=2)
        result = sinkhorn(cost, mu, nu, epsilon=0.5, max_iter=2000)
        assert result.converged

    def test_invalid_epsilon(self):
        cost, mu, nu = random_problem(3, 3)
        with pytest.raises(ValueError):
            sinkhorn(cost, mu, nu, epsilon=-1.0)

    def test_underflow_raises(self):
        # an entire row underflows to zero in the kernel domain
        cost = np.array([[1e6, 1e6], [0.0, 0.0]])
        mu = nu = np.array([0.5, 0.5])
        with pytest.raises(ConvergenceError):
            sinkhorn(cost, mu, nu, epsilon=1e-4)

    def test_bad_marginal_shape(self):
        cost, mu, nu = random_problem(3, 4)
        with pytest.raises(ShapeError):
            sinkhorn(cost, mu[:2], nu)


class TestSinkhornLog:
    def test_agrees_with_kernel_domain(self):
        cost, mu, nu = random_problem(7, 5, seed=3)
        a = sinkhorn(cost, mu, nu, epsilon=0.2, max_iter=3000, tol=1e-12)
        b = sinkhorn_log(cost, mu, nu, epsilon=0.2, max_iter=3000, tol=1e-12)
        np.testing.assert_allclose(a.plan, b.plan, atol=1e-6)

    def test_stable_at_tiny_epsilon(self):
        cost, mu, nu = random_problem(6, 6, seed=4)
        result = sinkhorn_log(cost, mu, nu, epsilon=1e-3, max_iter=5000)
        assert np.all(np.isfinite(result.plan))
        np.testing.assert_allclose(result.plan.sum(axis=1), mu, atol=1e-5)

    def test_approaches_emd_as_epsilon_shrinks(self):
        cost, mu, nu = random_problem(5, 5, seed=5)
        exact_plan = emd(cost, mu, nu)
        exact_cost = transport_cost(exact_plan, cost)
        loose = transport_cost(
            sinkhorn_log(cost, mu, nu, epsilon=0.5, max_iter=2000).plan, cost
        )
        tight = transport_cost(
            sinkhorn_log(cost, mu, nu, epsilon=0.005, max_iter=20000).plan, cost
        )
        assert abs(tight - exact_cost) < abs(loose - exact_cost)
        assert abs(tight - exact_cost) < 1e-2

    def test_log_kernel_entry_point(self):
        _, mu, nu = random_problem(4, 6, seed=6)
        log_kernel = np.zeros((4, 6))
        result = sinkhorn_log(None, mu, nu, log_kernel=log_kernel)
        # projecting the uniform kernel gives the independent coupling
        np.testing.assert_allclose(result.plan, np.outer(mu, nu), atol=1e-8)

    def test_nan_kernel_rejected(self):
        _, mu, nu = random_problem(3, 3)
        log_kernel = np.full((3, 3), np.nan)
        with pytest.raises(ConvergenceError):
            sinkhorn_log(None, mu, nu, log_kernel=log_kernel)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=2, max_value=10))
    def test_marginals_property(self, n, m):
        cost, mu, nu = random_problem(n, m, seed=n * 31 + m)
        result = sinkhorn_log(cost, mu, nu, epsilon=0.1, max_iter=2000)
        np.testing.assert_allclose(result.plan.sum(axis=1), mu, atol=1e-5)
        np.testing.assert_allclose(result.plan.sum(axis=0), nu, atol=1e-5)


class TestSinkhornProjection:
    def test_projects_kernel(self):
        rng = np.random.default_rng(7)
        kernel = rng.random((5, 5)) + 0.1
        mu = nu = np.full(5, 0.2)
        result = sinkhorn_projection(kernel, mu, nu, max_iter=2000)
        np.testing.assert_allclose(result.plan.sum(axis=1), mu, atol=1e-7)

    def test_negative_kernel_rejected(self):
        mu = nu = np.array([0.5, 0.5])
        with pytest.raises(ValueError):
            sinkhorn_projection(np.array([[1.0, -1.0], [1.0, 1.0]]), mu, nu)


def _reference_kernel_fast(log_kernel, mu, nu, max_iter=50, tol=0.0):
    """Straightforward serial loop: the bitwise anchor for the
    buffer-reusing implementation.

    Pins only the loop restructuring (reused matvec buffers, recycled
    convergence-check products) — the subnormal flush is a documented
    semantic change shared with this reference, not covered by the
    pin (see DESIGN.md, "Bitwise policy")."""
    log_k = np.asarray(log_kernel, dtype=np.float64)
    row_max = log_k.max(axis=1, keepdims=True)
    kernel = np.exp(log_k - row_max)
    kernel[kernel < _SUBNORMAL_FLUSH] = 0.0  # shared flush semantics
    tiny = 1e-300
    u = np.ones_like(mu)
    v = np.ones_like(nu)
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        u = mu / np.maximum(kernel @ v, tiny)
        v = nu / np.maximum(kernel.T @ u, tiny)
        if tol > 0 and iteration % 10 == 0:
            err = float(np.abs(u * (kernel @ v) - mu).sum())
            if err < tol:
                converged = True
                break
    u = mu / np.maximum(kernel @ v, tiny)
    plan = u[:, None] * kernel * v[None, :]
    plan[plan < _SUBNORMAL_FLUSH] = 0.0
    err = float(np.abs(plan.sum(axis=1) - mu).sum())
    return SinkhornResult(plan, iteration, err, converged or (tol > 0 and err < tol))


class TestKernelFastBitwise:
    """The optimised scaling loop (reused matvec buffers, recycled
    convergence-check products) must match the serial reference bit for
    bit — iteration counts, marginal errors and every plan entry."""

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 120))
        m = int(rng.integers(5, 120))
        sharpness = rng.uniform(0.5, 40.0)
        log_kernel = rng.standard_normal((n, m)) * sharpness
        mu = np.full(n, 1.0 / n)
        nu = np.full(m, 1.0 / m)
        for tol in (0.0, 1e-9, 1e-4):
            for max_iter in (7, 30, 100):
                fast = sinkhorn_log_kernel_fast(
                    log_kernel, mu, nu, max_iter=max_iter, tol=tol
                )
                ref = _reference_kernel_fast(
                    log_kernel, mu, nu, max_iter=max_iter, tol=tol
                )
                np.testing.assert_array_equal(fast.plan, ref.plan)
                assert fast.n_iterations == ref.n_iterations
                assert fast.marginal_error == ref.marginal_error
                assert fast.converged == ref.converged

    def test_subnormal_kernel_entries_flushed(self):
        """Entries hundreds of nats below their row maximum become
        exact zeros instead of subnormals (the denormal-arithmetic
        hot-path fix), without disturbing the marginals."""
        rng = np.random.default_rng(99)
        log_kernel = rng.standard_normal((40, 40)) * 250.0
        mu = np.full(40, 1.0 / 40)
        result = sinkhorn_log_kernel_fast(log_kernel, mu, mu, max_iter=100, tol=1e-9)
        tiny_entries = (result.plan > 0) & (result.plan < _SUBNORMAL_FLUSH)
        assert not tiny_entries.any()
        np.testing.assert_allclose(result.plan.sum(axis=1), mu, atol=1e-12)


class TestTransportCost:
    def test_value(self):
        plan = np.eye(2) / 2
        cost = np.array([[1.0, 5.0], [5.0, 3.0]])
        assert transport_cost(plan, cost) == pytest.approx(2.0)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            transport_cost(np.eye(2), np.eye(3))
