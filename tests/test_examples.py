"""The example scripts must run end-to-end (smoke integration tests)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "social_network_alignment.py",
        "kg_alignment.py",
        "robustness_study.py",
        "large_graph_partition.py",
    ],
)
def test_example_runs(script, capsys, monkeypatch):
    """Each example executes without error and prints a report."""
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    # shrink the workload: examples read no CLI args, so just run them;
    # they are already sized for demo-scale graphs
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out.splitlines()) > 3
