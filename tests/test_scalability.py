"""Tests for divide-and-conquer alignment (repro.core.scalability)."""

import numpy as np
import pytest

from repro.core import DivideAndConquerAligner, SLOTAlignConfig
from repro.datasets import make_semi_synthetic_pair
from repro.eval import hits_at_k
from repro.exceptions import GraphError
from repro.graphs import stochastic_block_model
from repro.graphs.features import community_bag_of_words


def big_pair(seed=0, n_blocks=4, block=20):
    graph = stochastic_block_model([block] * n_blocks, 0.35, 0.01, seed=seed)
    feats = community_bag_of_words(
        graph.node_labels, 60, words_per_node=10, seed=seed + 1
    )
    graph = graph.with_features(feats)
    return make_semi_synthetic_pair(graph, seed=seed + 2)


FAST_CFG = SLOTAlignConfig(
    n_bases=2, structure_lr=0.1, max_outer_iter=60, sinkhorn_iter=40,
    track_history=False,
)


class TestDivideAndConquer:
    def test_partitions_cover_source(self):
        pair = big_pair(seed=1)
        aligner = DivideAndConquerAligner(FAST_CFG, max_block_size=30)
        out = aligner.fit(pair.source, pair.target)
        covered = np.concatenate([src for src, _ in out.partitions])
        assert sorted(covered.tolist()) == list(range(pair.source.n_nodes))

    def test_multiple_blocks_created(self):
        pair = big_pair(seed=2)
        out = DivideAndConquerAligner(FAST_CFG, max_block_size=30).fit(
            pair.source, pair.target
        )
        assert out.extras["n_parts"] >= 2

    def test_plan_shape_and_sparsity(self):
        pair = big_pair(seed=3)
        out = DivideAndConquerAligner(FAST_CFG, max_block_size=30).fit(
            pair.source, pair.target
        )
        assert out.plan.shape == (pair.source.n_nodes, pair.target.n_nodes)
        # block structure: strictly fewer stored entries than dense
        assert out.plan.nnz < pair.source.n_nodes * pair.target.n_nodes

    def test_alignment_quality_reasonable(self):
        """Partitioned alignment trades some accuracy for scalability
        but must stay far above chance on a clean community pair."""
        pair = big_pair(seed=4)
        out = DivideAndConquerAligner(FAST_CFG, max_block_size=30).fit(
            pair.source, pair.target
        )
        hit = hits_at_k(out.dense_plan(), pair.ground_truth, 1)
        chance = 100.0 / pair.target.n_nodes
        assert hit > 10 * chance

    def test_single_block_matches_direct(self):
        """With max_block_size >= n the result equals plain SLOTAlign."""
        pair = big_pair(seed=5, n_blocks=2, block=12)
        direct = DivideAndConquerAligner(FAST_CFG, max_block_size=500).fit(
            pair.source, pair.target
        )
        assert direct.extras["n_parts"] == 1
        from repro.core import SLOTAlign

        plain = SLOTAlign(FAST_CFG).fit(pair.source, pair.target)
        np.testing.assert_allclose(
            direct.dense_plan(), plain.plan, atol=1e-8
        )

    def test_block_size_validation(self):
        with pytest.raises(GraphError):
            DivideAndConquerAligner(FAST_CFG, max_block_size=10, min_block_size=8)

    def test_runtime_recorded(self):
        pair = big_pair(seed=6)
        out = DivideAndConquerAligner(FAST_CFG, max_block_size=30).fit(
            pair.source, pair.target
        )
        assert out.runtime > 0


class TestScaleSubsystemIntegration:
    """The rebuilt pipeline through the historical entry point."""

    def test_direct_kway_mode(self):
        pair = big_pair(seed=7)
        out = DivideAndConquerAligner(FAST_CFG, n_parts=4).fit(
            pair.source, pair.target
        )
        assert out.extras["n_parts"] == 4
        sizes = [src.size for src, _ in out.partitions]
        assert max(sizes) - min(sizes) <= 1
        assert 0.0 <= out.extras["source_cut_fraction"] <= 1.0

    def test_sparse_accessors(self):
        pair = big_pair(seed=8)
        out = DivideAndConquerAligner(FAST_CFG, n_parts=3).fit(
            pair.source, pair.target
        )
        cols, scores = out.top_k(5)
        n = pair.source.n_nodes
        assert cols.shape == scores.shape == (n, 5)
        matching = out.matching()
        assert matching.shape == (n,)
        # top-1 column agrees with the matching, scores are descending
        assert np.array_equal(cols[:, 0], matching)
        valid = cols[:, 1] != -1
        assert np.all(scores[valid, 0] >= scores[valid, 1])

    def test_kway_respects_min_block_size(self):
        pair = big_pair(seed=7)  # 80 nodes
        aligner = DivideAndConquerAligner(
            FAST_CFG, n_parts=20, min_block_size=8
        )
        with pytest.raises(GraphError):
            aligner.fit(pair.source, pair.target)

    def test_repair_stats_exposed(self):
        pair = big_pair(seed=9)
        out = DivideAndConquerAligner(FAST_CFG, n_parts=4).fit(
            pair.source, pair.target
        )
        stats = out.extras["repair"]
        assert stats["n_patched"] == len(stats["patched_pairs"])
        assert stats["n_anchors"] >= 0
