"""Tests for repro.graphs.generators."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graphs import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    powerlaw_cluster_graph,
    random_bipartite_expansion,
    stochastic_block_model,
    watts_strogatz_graph,
)


class TestErdosRenyi:
    def test_size(self):
        g = erdos_renyi_graph(50, 0.1, seed=0)
        assert g.n_nodes == 50

    def test_edge_count_near_expectation(self):
        g = erdos_renyi_graph(100, 0.2, seed=0)
        expected = 0.2 * 100 * 99 / 2
        assert abs(g.n_edges - expected) < 0.3 * expected

    def test_p_zero_empty(self):
        assert erdos_renyi_graph(10, 0.0, seed=0).n_edges == 0

    def test_p_one_complete(self):
        g = erdos_renyi_graph(10, 1.0, seed=0)
        assert g.n_edges == 45

    def test_invalid_p(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 1.5)

    def test_deterministic(self):
        a = erdos_renyi_graph(30, 0.2, seed=5).edge_list()
        b = erdos_renyi_graph(30, 0.2, seed=5).edge_list()
        np.testing.assert_array_equal(a, b)


class TestBarabasiAlbert:
    def test_edge_count(self):
        g = barabasi_albert_graph(100, 3, seed=0)
        # each of the n - m new nodes adds m edges
        assert g.n_edges == (100 - 3) * 3

    def test_degree_skew(self):
        g = barabasi_albert_graph(200, 2, seed=0)
        degrees = np.sort(g.degrees)[::-1]
        assert degrees[0] > 4 * np.median(degrees)

    def test_invalid_attach(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(5, 5)


class TestPowerlawCluster:
    def test_size_and_connectivity(self):
        g = powerlaw_cluster_graph(100, 3, 0.5, seed=0)
        assert g.n_nodes == 100
        assert g.n_edges >= (100 - 3) * 2  # allows a few failed attachments

    def test_higher_triangle_p_more_clustering(self):
        import networkx as nx

        def clustering(graph):
            nxg = nx.Graph(list(map(tuple, graph.edge_list())))
            return nx.average_clustering(nxg)

        low = clustering(powerlaw_cluster_graph(300, 3, 0.0, seed=1))
        high = clustering(powerlaw_cluster_graph(300, 3, 0.9, seed=1))
        assert high > low

    def test_invalid_triangle_p(self):
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(10, 2, 1.5)


class TestWattsStrogatz:
    def test_no_rewire_ring(self):
        g = watts_strogatz_graph(20, 4, 0.0, seed=0)
        assert g.n_edges == 20 * 2
        np.testing.assert_array_equal(g.degrees, np.full(20, 4))

    def test_rewire_preserves_edge_count(self):
        g = watts_strogatz_graph(40, 4, 0.5, seed=0)
        assert g.n_edges == 40 * 2

    def test_odd_neighbors_rejected(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 3, 0.1)


class TestSBM:
    def test_labels(self):
        g = stochastic_block_model([10, 20], 0.5, 0.01, seed=0)
        assert g.n_nodes == 30
        assert list(np.bincount(g.node_labels)) == [10, 20]

    def test_within_denser_than_between(self):
        g = stochastic_block_model([50, 50], 0.3, 0.01, seed=0)
        labels = g.node_labels
        dense = g.dense_adjacency()
        same = labels[:, None] == labels[None, :]
        within = dense[same].mean()
        between = dense[~same].mean()
        assert within > 5 * between

    def test_invalid_probability(self):
        with pytest.raises(GraphError):
            stochastic_block_model([5, 5], 1.2, 0.1)

    def test_empty_block_rejected(self):
        with pytest.raises(GraphError):
            stochastic_block_model([5, 0], 0.1, 0.1)


class TestBipartiteExpansion:
    def test_grows_graph(self):
        core = erdos_renyi_graph(20, 0.2, seed=0)
        grown = random_bipartite_expansion(core, 10, attach_p=0.2, seed=1)
        assert grown.n_nodes == 30
        assert grown.n_edges >= core.n_edges + 10  # each new node attaches

    def test_core_edges_preserved(self):
        core = erdos_renyi_graph(15, 0.3, seed=2)
        grown = random_bipartite_expansion(core, 5, attach_p=0.1, seed=3)
        for u, v in core.edge_list():
            assert grown.has_edge(int(u), int(v))
