"""Shared test-harness fixtures.

Adds the ``--update-goldens`` flag: golden-fixture tests
(``tests/test_goldens.py``) compare solver outputs against committed
known-good artefacts under ``tests/goldens/``; after an *intentional*
behaviour change, regenerate them with

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

and commit the refreshed files alongside the change that explains them.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="regenerate the golden fixtures under tests/goldens/ "
        "instead of comparing against them",
    )


@pytest.fixture(scope="session")
def update_goldens(request) -> bool:
    """Whether this run should rewrite the golden fixtures."""
    return request.config.getoption("--update-goldens")
