"""Tests for exact OT (repro.ot.exact)."""

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.ot import emd, emd_cost, wasserstein_1d


class TestEMD:
    def test_identity_cost_prefers_diagonal(self):
        cost = 1.0 - np.eye(3)
        mu = nu = np.full(3, 1 / 3)
        plan = emd(cost, mu, nu)
        np.testing.assert_allclose(plan, np.eye(3) / 3, atol=1e-8)

    def test_marginals(self):
        rng = np.random.default_rng(0)
        cost = rng.random((4, 6))
        mu = rng.dirichlet(np.ones(4))
        nu = rng.dirichlet(np.ones(6))
        plan = emd(cost, mu, nu)
        np.testing.assert_allclose(plan.sum(axis=1), mu, atol=1e-8)
        np.testing.assert_allclose(plan.sum(axis=0), nu, atol=1e-8)

    def test_cost_lower_than_independent(self):
        rng = np.random.default_rng(1)
        cost = rng.random((5, 5))
        mu = nu = np.full(5, 0.2)
        optimal = emd_cost(cost, mu, nu)
        independent = float(np.sum(np.outer(mu, nu) * cost))
        assert optimal <= independent + 1e-10

    def test_nonneg_plan(self):
        rng = np.random.default_rng(2)
        plan = emd(rng.random((3, 4)), np.full(3, 1 / 3), np.full(4, 0.25))
        assert plan.min() >= -1e-10

    def test_1d_cost_is_monotone_matching(self):
        """On the line with sorted atoms, EMD matches in order."""
        x = np.array([0.0, 1.0, 2.0])
        y = np.array([0.1, 1.1, 2.1])
        cost = np.abs(x[:, None] - y[None, :])
        plan = emd(cost, np.full(3, 1 / 3), np.full(3, 1 / 3))
        np.testing.assert_allclose(plan, np.eye(3) / 3, atol=1e-8)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ShapeError):
            emd(np.ones(3), np.ones(3) / 3, np.ones(3) / 3)


class TestWasserstein1D:
    def test_identical_samples_zero(self):
        x = np.array([1.0, 2.0, 3.0])
        assert wasserstein_1d(x, x) == pytest.approx(0.0, abs=1e-12)

    def test_shifted_samples(self):
        x = np.array([0.0, 1.0, 2.0])
        assert wasserstein_1d(x, x + 5.0) == pytest.approx(5.0, abs=1e-6)

    def test_symmetry(self):
        rng = np.random.default_rng(3)
        x, y = rng.random(20), rng.random(30)
        assert wasserstein_1d(x, y) == pytest.approx(wasserstein_1d(y, x), abs=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            wasserstein_1d(np.array([]), np.array([1.0]))

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            wasserstein_1d(np.ones(3), np.ones(3), p=0)
